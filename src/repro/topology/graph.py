"""Time-snapshot network graphs over the constellation.

A :class:`SnapshotGraph` freezes the constellation at one instant: satellite
nodes connected by +Grid ISLs weighted with one-way latency (speed-of-light
propagation over the current link length, plus optical-terminal switching),
optionally joined by ground nodes (user terminals, gateways) attached to
every satellite they can currently see.

Node naming: satellites are integer indices; ground nodes are strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx
import numpy as np

from repro.constants import (
    ISL_HOP_PROCESSING_MS,
    MIN_ELEVATION_USER_DEG,
    SPEED_OF_LIGHT_KM_S,
    STARLINK_PROCESSING_DELAY_MS,
    STARLINK_SCHEDULING_DELAY_MS,
)
from repro.errors import ConfigurationError, VisibilityError
from repro.geo.coordinates import GeoPoint
from repro.orbits.walker import Constellation
from repro.topology.isl import plus_grid_links


def isl_latency_ms(distance_km: float) -> float:
    """One-way latency of an optical ISL of the given length.

    Free-space optical links run at vacuum light speed; each hop adds a small
    switching delay at the receiving optical terminal.
    """
    if distance_km < 0:
        raise ConfigurationError(f"negative ISL length: {distance_km}")
    return distance_km / SPEED_OF_LIGHT_KM_S * 1000.0 + ISL_HOP_PROCESSING_MS


def access_latency_ms(slant_range_km: float) -> float:
    """One-way latency of the Ku-band access link (terminal <-> satellite).

    Radio propagation at c plus the MAC scheduling delay (the terminal must
    wait for its uplink grant) and satellite processing.
    """
    if slant_range_km < 0:
        raise ConfigurationError(f"negative slant range: {slant_range_km}")
    return (
        slant_range_km / SPEED_OF_LIGHT_KM_S * 1000.0
        + STARLINK_SCHEDULING_DELAY_MS
        + STARLINK_PROCESSING_DELAY_MS
    )


@dataclass
class SnapshotGraph:
    """The constellation graph at a single instant.

    ``graph`` edge weights are one-way latencies in milliseconds under the
    key ``"latency_ms"``; satellite positions at the snapshot instant are
    cached for distance queries.
    """

    constellation: Constellation
    t_s: float
    graph: nx.Graph
    positions: np.ndarray
    ground_nodes: dict[str, GeoPoint] = field(default_factory=dict)

    def satellite_nodes(self) -> list[int]:
        """All satellite node indices."""
        return [n for n in self.graph.nodes if isinstance(n, int)]

    def attach_ground_node(
        self,
        name: str,
        point: GeoPoint,
        min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
        max_links: int | None = None,
    ) -> list[int]:
        """Attach a ground node to every satellite it can currently see.

        Returns the satellite indices linked. Raises
        :class:`VisibilityError` when no satellite is visible.
        """
        from repro.orbits.visibility import visible_satellites

        if name in self.graph:
            raise ConfigurationError(f"ground node {name!r} already attached")
        visible = visible_satellites(
            self.constellation, point, self.t_s, min_elevation_deg
        )
        if not visible:
            raise VisibilityError(f"no satellite visible from ground node {name!r}")
        if max_links is not None:
            visible = visible[:max_links]

        self.graph.add_node(name)
        self.ground_nodes[name] = point
        linked = []
        for sat in visible:
            self.graph.add_edge(
                name,
                sat.index,
                latency_ms=access_latency_ms(sat.slant_range_km),
                kind="access",
            )
            linked.append(sat.index)
        return linked

    def edge_latency_ms(self, a: Hashable, b: Hashable) -> float:
        """One-way latency of the edge between two adjacent nodes."""
        return float(self.graph[a][b]["latency_ms"])


def build_snapshot(constellation: Constellation, t_s: float) -> SnapshotGraph:
    """Build the ISL graph of the constellation at time ``t_s``.

    Nodes are satellite indices; every +Grid link is weighted with its
    current one-way latency.
    """
    positions = constellation.positions_ecef(t_s)
    links = plus_grid_links(constellation.config)

    graph = nx.Graph()
    graph.add_nodes_from(range(len(constellation)))
    for link in links:
        distance = float(np.linalg.norm(positions[link.a] - positions[link.b]))
        graph.add_edge(
            link.a,
            link.b,
            latency_ms=isl_latency_ms(distance),
            kind=link.kind,
            distance_km=distance,
        )
    return SnapshotGraph(
        constellation=constellation, t_s=t_s, graph=graph, positions=positions
    )
