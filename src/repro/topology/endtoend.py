"""End-to-end graph routing: user terminal -> space segment -> gateway -> PoP.

The analytic bent-pipe model (:mod:`repro.network.bentpipe`) resolves paths
structurally; this module routes the same paths over the *actual* snapshot
graph — terminal and gateways attached to every visible satellite, Dijkstra
through the ISLs — giving the high-fidelity number the analytic model is
calibrated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import MIN_ELEVATION_GS_DEG, MIN_ELEVATION_USER_DEG
from repro.errors import RoutingError, VisibilityError
from repro.geo.coordinates import GeoPoint
from repro.geo.datasets import City, assigned_pop
from repro.topology.graph import SnapshotGraph
from repro.topology.ground import GroundSegment
from repro.topology.routing import shortest_path


@dataclass(frozen=True)
class EndToEndPath:
    """A graph-routed path from a terminal to its PoP."""

    pop_name: str
    gateway_name: str
    satellite_hops: int
    one_way_ms: float
    path: tuple


@dataclass
class GraphPathRouter:
    """Routes user terminals to their assigned PoP over a snapshot graph.

    The snapshot is mutated (ground nodes get attached); use a dedicated
    snapshot per router, not a shared cached one.
    """

    snapshot: SnapshotGraph
    ground: GroundSegment = field(default_factory=GroundSegment.from_gazetteer)
    _attached: set[str] = field(default_factory=set, repr=False)

    def _attach_terminal(self, name: str, point: GeoPoint) -> str:
        node = f"ut:{name}"
        if node not in self._attached:
            self.snapshot.attach_ground_node(
                node, point, min_elevation_deg=MIN_ELEVATION_USER_DEG, max_links=4
            )
            self._attached.add(node)
        return node

    def _attach_gateways(self, pop_name: str) -> list[tuple[str, float]]:
        """Attach every gateway of a PoP; returns (node, backhaul one-way ms)."""
        nodes = []
        for gateway in self.ground.stations_for_pop(pop_name):
            node = gateway.node_name
            if node not in self._attached:
                try:
                    self.snapshot.attach_ground_node(
                        node,
                        gateway.location,
                        min_elevation_deg=MIN_ELEVATION_GS_DEG,
                        max_links=8,
                    )
                except VisibilityError:
                    continue  # gateway outside this shell's coverage band
                self._attached.add(node)
            nodes.append((node, gateway.backhaul_latency_ms()))
        return nodes

    def route_city(self, city: City) -> EndToEndPath:
        """Route a terminal in ``city`` to its assigned PoP through space.

        Picks, over every reachable gateway of the assigned PoP, the
        minimum total latency (space path + fiber backhaul).
        """
        pop = assigned_pop(city.iso2, city.lat_deg, city.lon_deg)
        terminal = self._attach_terminal(city.name, city.location)
        gateways = self._attach_gateways(pop.name)
        if not gateways:
            raise RoutingError(f"no gateway of PoP {pop.name!r} sees the constellation")

        best: EndToEndPath | None = None
        for gateway_node, backhaul_ms in gateways:
            try:
                route = shortest_path(self.snapshot, terminal, gateway_node)
            except RoutingError:
                continue
            total = route.latency_ms + backhaul_ms + self.ground.pop_named(
                pop.name
            ).processing_delay_ms
            if best is None or total < best.one_way_ms:
                best = EndToEndPath(
                    pop_name=pop.name,
                    gateway_name=gateway_node.removeprefix("gs:"),
                    satellite_hops=max(0, route.hops - 2),
                    one_way_ms=total,
                    path=route.path,
                )
        if best is None:
            raise RoutingError(
                f"no space path from {city.name} to any gateway of {pop.name!r}"
            )
        return best
