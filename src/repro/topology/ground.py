"""Ground-segment node models: user terminals, gateways, PoPs.

These bind gazetteer sites to the snapshot-graph machinery: a
:class:`UserTerminal` is a subscriber dish at a city; a
:class:`GroundStation` wraps a gateway site and knows its backhaul PoP; a
:class:`PointOfPresence` is where traffic enters the Internet and where the
nearest CDN cache is found.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import (
    FIBER_SPEED_KM_S,
    MIN_ELEVATION_GS_DEG,
    MIN_ELEVATION_USER_DEG,
    POP_PROCESSING_DELAY_MS,
    TERRESTRIAL_PER_HOP_MS,
)
from repro.geo.coordinates import GeoPoint, great_circle_km
from repro.geo.datasets import GroundStationSite, PopSite


@dataclass(frozen=True)
class UserTerminal:
    """A Starlink subscriber terminal ("Dishy") at a fixed location."""

    name: str
    location: GeoPoint
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG

    @property
    def node_name(self) -> str:
        """The graph node name used when attaching to a snapshot."""
        return f"ut:{self.name}"


@dataclass(frozen=True)
class GroundStation:
    """A gateway: downlinks constellation traffic and backhauls it to a PoP."""

    site: GroundStationSite
    min_elevation_deg: float = MIN_ELEVATION_GS_DEG

    @property
    def name(self) -> str:
        return self.site.name

    @property
    def location(self) -> GeoPoint:
        return self.site.location

    @property
    def node_name(self) -> str:
        return f"gs:{self.site.name}"

    @property
    def pop(self) -> PopSite:
        """The PoP site this gateway backhauls to."""
        return self.site.pop

    def backhaul_latency_ms(self, hops: int = 3) -> float:
        """One-way fiber latency from this gateway to its PoP."""
        distance = great_circle_km(self.location, self.site.pop.location)
        # Gateway backhaul is dedicated fiber: modest circuity.
        return distance * 1.3 / FIBER_SPEED_KM_S * 1000.0 + hops * TERRESTRIAL_PER_HOP_MS


@dataclass(frozen=True)
class PointOfPresence:
    """A Starlink PoP: CGNAT boundary and Internet hand-off point."""

    site: PopSite
    processing_delay_ms: float = POP_PROCESSING_DELAY_MS

    @property
    def name(self) -> str:
        return self.site.name

    @property
    def location(self) -> GeoPoint:
        return self.site.location

    @property
    def node_name(self) -> str:
        return f"pop:{self.site.name}"


@dataclass
class GroundSegment:
    """The full ground segment: every gateway and PoP, with lookup helpers."""

    stations: tuple[GroundStation, ...]
    pops: tuple[PointOfPresence, ...]
    _pops_by_name: dict[str, PointOfPresence] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._pops_by_name = {pop.name: pop for pop in self.pops}

    @staticmethod
    def from_gazetteer() -> "GroundSegment":
        """Build the ground segment from the embedded datasets."""
        from repro.geo.datasets import all_ground_stations, all_pops

        return GroundSegment(
            stations=tuple(GroundStation(site) for site in all_ground_stations()),
            pops=tuple(PointOfPresence(site) for site in all_pops()),
        )

    def pop_named(self, name: str) -> PointOfPresence:
        """Look up a PoP by name."""
        from repro.errors import DatasetError

        pop = self._pops_by_name.get(name)
        if pop is None:
            raise DatasetError(f"unknown PoP: {name!r}")
        return pop

    def stations_for_pop(self, pop_name: str) -> tuple[GroundStation, ...]:
        """Every gateway backhauling to the named PoP."""
        return tuple(gs for gs in self.stations if gs.site.pop_name == pop_name)

    def nearest_station(self, point: GeoPoint) -> GroundStation:
        """The geographically nearest gateway to a point."""
        return min(
            self.stations, key=lambda gs: great_circle_km(point, gs.location)
        )
