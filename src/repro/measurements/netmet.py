"""NetMet: the web-browsing measurement model (paper §3.1).

Reproduces what the browser plugin records per page fetch: DNS lookup, TCP
connect, TLS negotiation, HTTP response time (first byte), and — in the
containerised deployment — first contentful paint. Every timing is a
function of the access path's RTT, the page's critical path, and the access
bandwidth, so ISP differences flow straight through to the user experience
numbers, exactly as the paper observes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.geo.datasets import City
from repro.measurements.aim import STARLINK, TERRESTRIAL, AimGenerator
from repro.measurements.webpage import WebPage, top_site_pages

# Access downlink medians (Mbps) for the transfer-time model.
_STARLINK_BANDWIDTH_MEDIAN_MBPS = 140.0
_TIER_BANDWIDTH_MEDIAN_MBPS = {1: 300.0, 2: 100.0, 3: 30.0}
_COUNTRY_BANDWIDTH_MEDIAN_MBPS = {"NG": 12.0}
_BANDWIDTH_SIGMA = 0.4

_TCP_INITIAL_WINDOW_BYTES = 10 * 1460
_PARALLEL_CONNECTIONS = 6


@dataclass(frozen=True)
class PageFetchMetrics:
    """The per-fetch record NetMet produces."""

    page: str
    city: str
    iso2: str
    isp: str
    dns_ms: float
    connect_ms: float
    tls_ms: float
    http_response_ms: float
    fcp_ms: float


@dataclass
class NetMetProbe:
    """Simulated NetMet deployment: fetches the top pages from a city."""

    seed: int = 0
    generator: AimGenerator = field(init=False)

    def __post_init__(self) -> None:
        self.generator = AimGenerator(seed=self.seed)

    # -- component models -------------------------------------------------

    def _rng(self):
        return self.generator.terrestrial.noise.rng

    def bandwidth_mbps(self, city: City, isp: str) -> float:
        """One sampled downlink bandwidth for a client."""
        if isp == STARLINK:
            median = _STARLINK_BANDWIDTH_MEDIAN_MBPS
        elif isp == TERRESTRIAL:
            median = _COUNTRY_BANDWIDTH_MEDIAN_MBPS.get(
                city.iso2, _TIER_BANDWIDTH_MEDIAN_MBPS[city.country.infra_tier]
            )
        else:
            raise ConfigurationError(f"unknown ISP class: {isp!r}")
        return float(self._rng().lognormal(math.log(median), _BANDWIDTH_SIGMA))

    @staticmethod
    def slow_start_rtts(transfer_bytes: int) -> int:
        """Extra round trips TCP slow start costs for a transfer."""
        if transfer_bytes < 0:
            raise ConfigurationError(f"negative transfer size: {transfer_bytes}")
        if transfer_bytes <= _TCP_INITIAL_WINDOW_BYTES:
            return 0
        return min(5, int(math.ceil(math.log2(transfer_bytes / _TCP_INITIAL_WINDOW_BYTES))))

    @staticmethod
    def transfer_ms(transfer_bytes: int, bandwidth_mbps: float) -> float:
        """Serialisation time of a transfer at the given bandwidth."""
        if bandwidth_mbps <= 0:
            raise ConfigurationError(f"bandwidth must be positive: {bandwidth_mbps}")
        return transfer_bytes * 8.0 / (bandwidth_mbps * 1e6) * 1000.0

    # -- fetch simulation ---------------------------------------------------

    def fetch_page(self, city: City, isp: str, page: WebPage) -> PageFetchMetrics:
        """Simulate one page fetch and return its NetMet record."""
        site, _ = self.generator.optimal_site(city, isp)
        rtt = self.generator.sample_rtt_ms(city, site, isp)
        bandwidth = self.bandwidth_mbps(city, isp)
        rng = self._rng()

        # DNS usually hits a nearby resolver cache; misses pay a recursive
        # lookup that scales with the path RTT. Popular landing pages are
        # cached most of the time.
        if rng.random() < 0.7:
            dns_ms = float(rng.exponential(1.5))
        else:
            dns_ms = 0.4 * rtt + float(rng.exponential(5.0))
        connect_ms = rtt  # TCP three-way handshake
        tls_ms = rtt  # TLS 1.3, one round trip
        # HTTP response time: request out, first byte back (server think time
        # is already part of the sampled RTT's remote component). First byte
        # needs no slow start — that cost lands on the body transfer below.
        http_response_ms = rtt

        html_ms = (
            self.transfer_ms(page.html_bytes, bandwidth)
            + self.slow_start_rtts(page.html_bytes) * rtt * 0.35
        )
        # Critical resources multiplex over the warm connection (HTTP/2) plus
        # a small parallel pool: one request round trip per connection wave,
        # with the congestion window continuing to ramp.
        waves = min(2, math.ceil(page.critical_resources / _PARALLEL_CONNECTIONS)) if page.critical_resources else 0
        resource_rtts = waves * rtt + self.slow_start_rtts(page.critical_bytes) * rtt * 0.35
        resource_ms = self.transfer_ms(page.critical_bytes, bandwidth)

        fcp_ms = (
            dns_ms
            + connect_ms
            + tls_ms
            + http_response_ms
            + html_ms
            + resource_rtts
            + resource_ms
            + page.render_ms
        )
        return PageFetchMetrics(
            page=page.name,
            city=city.name,
            iso2=city.iso2,
            isp=isp,
            dns_ms=dns_ms,
            connect_ms=connect_ms,
            tls_ms=tls_ms,
            http_response_ms=http_response_ms,
            fcp_ms=fcp_ms,
        )

    def browse(
        self, city: City, isp: str, rounds: int = 1
    ) -> list[PageFetchMetrics]:
        """Fetch every top page ``rounds`` times from a city over one ISP."""
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        records: list[PageFetchMetrics] = []
        for _ in range(rounds):
            for page in top_site_pages():
                records.append(self.fetch_page(city, isp, page))
        return records
