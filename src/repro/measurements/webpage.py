"""Web-page models for the NetMet browsing simulation.

A page is characterised by what determines its first-contentful-paint: the
HTML document size, the number and total size of *render-critical* resources
(CSS, blocking JS, above-the-fold images), and how many round trips the
critical path costs. The ``top_site_pages`` set mirrors the paper's use of
the Tranco top-20 landing pages served by Cloudflare/CloudFront.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WebPage:
    """A landing page as seen by the fetch model."""

    name: str
    html_bytes: int
    critical_resources: int
    critical_bytes: int
    render_ms: float
    """Client-side parse/layout/paint time on a reference machine."""

    def __post_init__(self) -> None:
        if self.html_bytes <= 0 or self.critical_bytes < 0:
            raise ConfigurationError(f"page {self.name!r} has invalid sizes")
        if self.critical_resources < 0:
            raise ConfigurationError(f"page {self.name!r} has negative resources")
        if self.render_ms < 0:
            raise ConfigurationError(f"page {self.name!r} has negative render time")

    @property
    def total_bytes(self) -> int:
        return self.html_bytes + self.critical_bytes


# Synthetic stand-ins for the Tranco top-20 landing pages: sizes and critical
# resource counts follow the published HTTP Archive medians for popular sites.
_TOP_PAGES: tuple[tuple[str, int, int, int, float], ...] = (
    ("search-portal", 50_000, 4, 300_000, 120.0),
    ("video-platform", 90_000, 8, 800_000, 200.0),
    ("social-network", 120_000, 10, 900_000, 220.0),
    ("encyclopedia", 70_000, 3, 150_000, 90.0),
    ("news-international", 110_000, 12, 1_100_000, 240.0),
    ("news-regional", 95_000, 10, 850_000, 210.0),
    ("e-commerce", 130_000, 9, 1_000_000, 230.0),
    ("streaming-service", 85_000, 7, 700_000, 190.0),
    ("webmail", 60_000, 5, 400_000, 150.0),
    ("developer-hub", 55_000, 4, 250_000, 110.0),
    ("cloud-console", 75_000, 6, 500_000, 170.0),
    ("messaging-web", 65_000, 5, 450_000, 160.0),
    ("travel-booking", 125_000, 11, 950_000, 235.0),
    ("banking-portal", 80_000, 6, 550_000, 180.0),
    ("sports-scores", 100_000, 9, 800_000, 215.0),
    ("weather-service", 45_000, 3, 200_000, 100.0),
    ("q-and-a-forum", 58_000, 4, 280_000, 115.0),
    ("photo-sharing", 105_000, 8, 1_200_000, 225.0),
    ("music-streaming", 72_000, 6, 480_000, 165.0),
    ("gaming-store", 135_000, 12, 1_300_000, 245.0),
)


def top_site_pages() -> tuple[WebPage, ...]:
    """The 20 synthetic landing pages the NetMet model browses."""
    return tuple(WebPage(*row) for row in _TOP_PAGES)
