"""Synthetic Cloudflare-AIM-style speed-test dataset.

Replaces the paper's crowdsourced AIM cut (~22K Starlink + ~800K terrestrial
tests) with a generator over the same *structure*: per city and ISP class,
tests measure idle RTT to the anycast-optimal CDN site — determined, as in
the paper's methodology, by the median of sampled idle latencies per site.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from statistics import median

from repro.cdn.anycast import best_site_by_latency
from repro.errors import ConfigurationError
from repro.geo.coordinates import great_circle_km
from repro.geo.datasets import (
    CdnSite,
    City,
    all_cdn_sites,
    all_cities,
    assigned_pop,
)
from repro.network.bentpipe import StarlinkPathModel
from repro.network.latency import LatencyNoise
from repro.network.terrestrial import TerrestrialPathModel
from repro.simulation.sampler import seeded_rng

STARLINK = "starlink"
TERRESTRIAL = "terrestrial"


@dataclass(frozen=True)
class SpeedTest:
    """One synthetic speed-test record (the fields the paper's analysis uses)."""

    city: str
    iso2: str
    isp: str
    cdn_site: str
    cdn_iso2: str
    latency_ms: float
    loaded_latency_ms: float
    cdn_distance_km: float
    download_mbps: float
    upload_mbps: float


@dataclass
class AimDataset:
    """A bag of speed tests with the aggregations the experiments need."""

    tests: list[SpeedTest] = field(default_factory=list)

    def filter(self, isp: str | None = None, iso2: str | None = None) -> list[SpeedTest]:
        """Tests matching the given ISP class and/or country."""
        return [
            t
            for t in self.tests
            if (isp is None or t.isp == isp) and (iso2 is None or t.iso2 == iso2)
        ]

    def countries(self, isp: str) -> set[str]:
        """Countries with at least one test for an ISP class."""
        return {t.iso2 for t in self.tests if t.isp == isp}

    def rtts_by_country(self, isp: str) -> dict[str, list[float]]:
        """idle RTT samples grouped by country for one ISP class."""
        grouped: dict[str, list[float]] = {}
        for test in self.tests:
            if test.isp == isp:
                grouped.setdefault(test.iso2, []).append(test.latency_ms)
        return grouped

    def median_rtt_ms(self, iso2: str, isp: str) -> float:
        """Median idle RTT for a country/ISP; NaN when unmeasured."""
        samples = [t.latency_ms for t in self.filter(isp=isp, iso2=iso2)]
        if not samples:
            return math.nan
        return float(median(samples))

    def min_rtt_ms(self, iso2: str, isp: str) -> float:
        """Minimum observed idle RTT for a country/ISP; NaN when unmeasured."""
        samples = [t.latency_ms for t in self.filter(isp=isp, iso2=iso2)]
        if not samples:
            return math.nan
        return float(min(samples))

    def mean_distance_km(self, iso2: str, isp: str) -> float:
        """Average client-to-chosen-CDN distance; NaN when unmeasured."""
        samples = [t.cdn_distance_km for t in self.filter(isp=isp, iso2=iso2)]
        if not samples:
            return math.nan
        return float(sum(samples) / len(samples))

    def all_rtts(self, isp: str) -> list[float]:
        """Every idle RTT for an ISP class."""
        return [t.latency_ms for t in self.tests if t.isp == isp]

    def all_rtts_pooled(self, isp: str) -> list[float]:
        """Idle and loaded RTTs pooled, for an ISP class.

        Speed tests measure latency both before and during active transfer;
        "the whole CDF" of AIM latency samples (paper Fig. 7 baselines)
        therefore spans both regimes — which is where Starlink's bufferbloat
        tail comes from.
        """
        samples: list[float] = []
        for test in self.tests:
            if test.isp == isp:
                samples.append(test.latency_ms)
                samples.append(test.loaded_latency_ms)
        return samples


@dataclass
class AimGenerator:
    """Generates the synthetic AIM dataset from the path models."""

    seed: int = 0
    probes_per_site: int = 5
    candidate_sites: int = 8
    terrestrial: TerrestrialPathModel = field(init=False)
    starlink: StarlinkPathModel = field(init=False)
    _candidate_cache: dict[tuple[float, float], list[CdnSite]] = field(
        init=False, default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.probes_per_site < 1 or self.candidate_sites < 1:
            raise ConfigurationError("probes and candidate counts must be >= 1")
        noise = LatencyNoise(rng=seeded_rng(self.seed, 1))
        self.terrestrial = TerrestrialPathModel(noise=noise)
        self.starlink = StarlinkPathModel(noise=noise)

    # -- per-test sampling ------------------------------------------------

    def sample_rtt_ms(self, city: City, site: CdnSite, isp: str) -> float:
        """One idle-RTT sample from a city to a CDN site over an ISP class."""
        if isp == TERRESTRIAL:
            return self.terrestrial.idle_rtt_ms(city, site.location, site.iso2)
        if isp == STARLINK:
            return self.starlink.idle_rtt_ms(city, site.location, site.iso2)
        raise ConfigurationError(f"unknown ISP class: {isp!r}")

    def sample_loaded_rtt_ms(self, city: City, site: CdnSite, isp: str) -> float:
        """One loaded-RTT sample (active download in progress)."""
        if isp == TERRESTRIAL:
            # Terrestrial bufferbloat is mild by comparison.
            return self.terrestrial.idle_rtt_ms(
                city, site.location, site.iso2
            ) + float(self.terrestrial.noise.rng.exponential(25.0))
        if isp == STARLINK:
            return self.starlink.loaded_rtt_ms(city, site.location, site.iso2)
        raise ConfigurationError(f"unknown ISP class: {isp!r}")

    # -- anycast optimum ---------------------------------------------------

    def candidate_sites_for(self, city: City, isp: str) -> list[CdnSite]:
        """The sites anycast could plausibly deliver this client to.

        Terrestrial anycast follows client geography; Starlink anycast
        follows the assigned PoP's geography.
        """
        if isp == TERRESTRIAL:
            anchor = city.location
        elif isp == STARLINK:
            anchor = assigned_pop(city.iso2, city.lat_deg, city.lon_deg).location
        else:
            raise ConfigurationError(f"unknown ISP class: {isp!r}")
        # Memoised per anchor: Starlink clients of one country share their
        # assigned PoP's anchor, so the sorted site list is identical.
        key = (anchor.lat_deg, anchor.lon_deg)
        cached = self._candidate_cache.get(key)
        if cached is None:
            cached = sorted(
                all_cdn_sites(), key=lambda s: great_circle_km(anchor, s.location)
            )[: self.candidate_sites]
            self._candidate_cache[key] = cached
        return list(cached)

    def optimal_site(self, city: City, isp: str) -> tuple[CdnSite, float]:
        """The median-latency-optimal CDN site for a city/ISP (paper §3.1)."""
        candidates = self.candidate_sites_for(city, isp)

        def median_rtt(site: CdnSite) -> float:
            return float(
                median(
                    self.sample_rtt_ms(city, site, isp)
                    for _ in range(self.probes_per_site)
                )
            )

        return best_site_by_latency(candidates, median_rtt)

    # -- dataset generation --------------------------------------------------

    def sample_download_mbps(self, city: City, isp: str, rtt_ms: float) -> float:
        """One sampled single-flow download speed for the path class.

        TCP couples throughput to RTT and residual loss (Mathis bound), so
        the Starlink latency penalty also shows up as a speed penalty.
        """
        from repro.network.throughput import starlink_profile, terrestrial_profile

        if isp == STARLINK:
            profile = starlink_profile(self.starlink.resolve_path(city).uses_isl)
        elif isp == TERRESTRIAL:
            profile = terrestrial_profile(city.country.infra_tier)
        else:
            raise ConfigurationError(f"unknown ISP class: {isp!r}")
        bound = profile.download_mbps(rtt_ms)
        # Per-test variability: cross traffic, Wi-Fi, server pacing.
        return bound * float(self.terrestrial.noise.rng.uniform(0.5, 1.0))

    def sample_upload_mbps(self, city: City, isp: str, rtt_ms: float) -> float:
        """One sampled upload speed (narrow, asymmetric return channels)."""
        from repro.network.throughput import (
            starlink_upload_profile,
            terrestrial_upload_profile,
        )

        if isp == STARLINK:
            profile = starlink_upload_profile(self.starlink.resolve_path(city).uses_isl)
        elif isp == TERRESTRIAL:
            profile = terrestrial_upload_profile(city.country.infra_tier)
        else:
            raise ConfigurationError(f"unknown ISP class: {isp!r}")
        bound = profile.download_mbps(rtt_ms)
        return bound * float(self.terrestrial.noise.rng.uniform(0.5, 1.0))

    def generate_city_tests(
        self, city: City, isp: str, num_tests: int
    ) -> list[SpeedTest]:
        """``num_tests`` speed tests from one city over one ISP class."""
        if num_tests < 1:
            raise ConfigurationError("num_tests must be >= 1")
        site, _ = self.optimal_site(city, isp)
        distance = great_circle_km(city.location, site.location)
        tests = []
        for _ in range(num_tests):
            latency = self.sample_rtt_ms(city, site, isp)
            tests.append(
                SpeedTest(
                    city=city.name,
                    iso2=city.iso2,
                    isp=isp,
                    cdn_site=site.name,
                    cdn_iso2=site.iso2,
                    latency_ms=latency,
                    loaded_latency_ms=self.sample_loaded_rtt_ms(city, site, isp),
                    cdn_distance_km=distance,
                    download_mbps=self.sample_download_mbps(city, isp, latency),
                    upload_mbps=self.sample_upload_mbps(city, isp, latency),
                )
            )
        return tests

    # Starlink AIM test volume skews towards regions with poor terrestrial
    # alternatives (that is where subscriptions concentrate), so per-city
    # Starlink test counts scale with the terrestrial infrastructure tier.
    STARLINK_TIER_WEIGHT = {1: 1.0, 2: 1.5, 3: 2.5}

    def generate(
        self,
        tests_per_city: int = 30,
        cities: tuple[City, ...] | None = None,
    ) -> AimDataset:
        """The full dataset: terrestrial tests everywhere, Starlink tests in
        covered countries only (mirroring the paper's 55-vs-196 split)."""
        dataset = AimDataset()
        for city in cities if cities is not None else all_cities():
            dataset.tests.extend(
                self.generate_city_tests(city, TERRESTRIAL, tests_per_city)
            )
            if city.country.starlink:
                weight = self.STARLINK_TIER_WEIGHT[city.country.infra_tier]
                dataset.tests.extend(
                    self.generate_city_tests(
                        city, STARLINK, max(1, round(tests_per_city * weight))
                    )
                )
        return dataset
