"""Dataset export/import (the paper publishes its measurement artifacts).

Serialises the synthetic AIM dataset and NetMet records to CSV and JSON so
downstream analyses can run outside this package, and loads them back for
round-trip workflows.

All writers are crash-safe (:mod:`repro.atomicio`): a process killed
mid-export can never leave a truncated CSV/JSON under the destination
name. All readers raise :class:`~repro.errors.DatasetError` — never a bare
``ValueError``/``KeyError``/``JSONDecodeError`` — carrying the file path
and the offending row number.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, fields
from pathlib import Path

from repro.atomicio import atomic_open, atomic_write_text
from repro.errors import DatasetError
from repro.measurements.aim import AimDataset, SpeedTest
from repro.measurements.netmet import PageFetchMetrics

_SPEEDTEST_FIELDS = [f.name for f in fields(SpeedTest)]
_NETMET_FIELDS = [f.name for f in fields(PageFetchMetrics)]
_SPEEDTEST_FLOATS = {
    "latency_ms",
    "loaded_latency_ms",
    "cdn_distance_km",
    "download_mbps",
    "upload_mbps",
}


def write_aim_csv(dataset: AimDataset, path: str | Path) -> int:
    """Atomically write the dataset as CSV; returns the rows written."""
    with atomic_open(path, newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_SPEEDTEST_FIELDS)
        writer.writeheader()
        for test in dataset.tests:
            writer.writerow(asdict(test))
    return len(dataset.tests)


def read_aim_csv(path: str | Path) -> AimDataset:
    """Load a dataset previously written by :func:`write_aim_csv`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such file: {path}")
    dataset = AimDataset()
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != _SPEEDTEST_FIELDS:
            raise DatasetError(
                f"unexpected CSV header in {path}: {reader.fieldnames}"
            )
        for row_number, row in enumerate(reader, start=2):  # 1 is the header
            try:
                for key in _SPEEDTEST_FLOATS:
                    row[key] = float(row[key])
                dataset.tests.append(SpeedTest(**row))
            except (ValueError, KeyError, TypeError) as exc:
                raise DatasetError(
                    f"malformed row {row_number} in {path}: {exc}"
                ) from exc
    return dataset


def write_aim_json(dataset: AimDataset, path: str | Path) -> int:
    """Atomically write the dataset as a JSON array; returns the row count."""
    payload = [asdict(test) for test in dataset.tests]
    atomic_write_text(path, json.dumps(payload, indent=1))
    return len(payload)


def read_aim_json(path: str | Path) -> AimDataset:
    """Load a dataset previously written by :func:`write_aim_json`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such file: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise DatasetError(f"invalid JSON in {path}: {exc}") from exc
    if not isinstance(payload, list):
        raise DatasetError(f"expected a JSON array in {path}")
    dataset = AimDataset()
    for row_number, row in enumerate(payload, start=1):
        if not isinstance(row, dict):
            raise DatasetError(
                f"record {row_number} in {path} is not a JSON object"
            )
        missing = set(_SPEEDTEST_FIELDS) - set(row)
        if missing:
            raise DatasetError(
                f"record {row_number} in {path} missing fields {sorted(missing)}"
            )
        try:
            dataset.tests.append(
                SpeedTest(**{k: row[k] for k in _SPEEDTEST_FIELDS})
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise DatasetError(
                f"malformed record {row_number} in {path}: {exc}"
            ) from exc
    return dataset


def write_netmet_csv(records: list[PageFetchMetrics], path: str | Path) -> int:
    """Atomically write NetMet page-fetch records as CSV; returns the count."""
    with atomic_open(path, newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_NETMET_FIELDS)
        writer.writeheader()
        for record in records:
            writer.writerow(asdict(record))
    return len(records)
