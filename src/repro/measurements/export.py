"""Dataset export/import (the paper publishes its measurement artifacts).

Serialises the synthetic AIM dataset and NetMet records to CSV and JSON so
downstream analyses can run outside this package, and loads them back for
round-trip workflows.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, fields
from pathlib import Path

from repro.errors import DatasetError
from repro.measurements.aim import AimDataset, SpeedTest
from repro.measurements.netmet import PageFetchMetrics

_SPEEDTEST_FIELDS = [f.name for f in fields(SpeedTest)]
_NETMET_FIELDS = [f.name for f in fields(PageFetchMetrics)]
_SPEEDTEST_FLOATS = {
    "latency_ms",
    "loaded_latency_ms",
    "cdn_distance_km",
    "download_mbps",
    "upload_mbps",
}


def write_aim_csv(dataset: AimDataset, path: str | Path) -> int:
    """Write the dataset as CSV; returns the number of rows written."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_SPEEDTEST_FIELDS)
        writer.writeheader()
        for test in dataset.tests:
            writer.writerow(asdict(test))
    return len(dataset.tests)


def read_aim_csv(path: str | Path) -> AimDataset:
    """Load a dataset previously written by :func:`write_aim_csv`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such file: {path}")
    dataset = AimDataset()
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != _SPEEDTEST_FIELDS:
            raise DatasetError(
                f"unexpected CSV header in {path}: {reader.fieldnames}"
            )
        for row in reader:
            for key in _SPEEDTEST_FLOATS:
                row[key] = float(row[key])
            dataset.tests.append(SpeedTest(**row))
    return dataset


def write_aim_json(dataset: AimDataset, path: str | Path) -> int:
    """Write the dataset as a JSON array; returns the row count."""
    path = Path(path)
    payload = [asdict(test) for test in dataset.tests]
    path.write_text(json.dumps(payload, indent=1))
    return len(payload)


def read_aim_json(path: str | Path) -> AimDataset:
    """Load a dataset previously written by :func:`write_aim_json`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such file: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise DatasetError(f"invalid JSON in {path}: {exc}") from exc
    if not isinstance(payload, list):
        raise DatasetError(f"expected a JSON array in {path}")
    dataset = AimDataset()
    for row in payload:
        missing = set(_SPEEDTEST_FIELDS) - set(row)
        if missing:
            raise DatasetError(f"record missing fields {sorted(missing)} in {path}")
        dataset.tests.append(SpeedTest(**{k: row[k] for k in _SPEEDTEST_FIELDS}))
    return dataset


def write_netmet_csv(records: list[PageFetchMetrics], path: str | Path) -> int:
    """Write NetMet page-fetch records as CSV; returns the row count."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_NETMET_FIELDS)
        writer.writeheader()
        for record in records:
            writer.writerow(asdict(record))
    return len(records)
