"""Measurement simulation: the synthetic AIM dataset and NetMet web model."""

from repro.measurements.aim import SpeedTest, AimDataset, AimGenerator
from repro.measurements.webpage import WebPage, top_site_pages
from repro.measurements.netmet import NetMetProbe, PageFetchMetrics

__all__ = [
    "SpeedTest",
    "AimDataset",
    "AimGenerator",
    "WebPage",
    "top_site_pages",
    "NetMetProbe",
    "PageFetchMetrics",
]
