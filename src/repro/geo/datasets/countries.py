"""Country-level attributes: region, terrestrial infrastructure tier, coverage.

The *infrastructure tier* drives terrestrial route circuity (see
``repro.constants``): tier 1 regions have dense fiber and IXPs, tier 3 regions
route large detours (the paper cites Formoso et al. on Africa's inter-country
latencies). Starlink coverage flags which countries contribute Starlink
measurements (55 countries in the paper's AIM cut).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import DatasetError


@dataclass(frozen=True)
class Country:
    """Static per-country attributes used by the latency models."""

    iso2: str
    name: str
    region: str
    infra_tier: int
    starlink: bool


# (iso2, name, region, infra_tier, starlink_covered)
_COUNTRIES: tuple[tuple[str, str, str, int, bool], ...] = (
    # North America
    ("US", "United States", "north-america", 1, True),
    ("CA", "Canada", "north-america", 1, True),
    ("MX", "Mexico", "north-america", 2, True),
    # Central America & Caribbean
    ("GT", "Guatemala", "central-america", 3, True),
    ("HN", "Honduras", "central-america", 3, True),
    ("SV", "El Salvador", "central-america", 3, True),
    ("CR", "Costa Rica", "central-america", 2, True),
    ("PA", "Panama", "central-america", 2, True),
    ("HT", "Haiti", "caribbean", 3, True),
    ("DO", "Dominican Republic", "caribbean", 2, True),
    ("JM", "Jamaica", "caribbean", 2, True),
    # South America
    ("BR", "Brazil", "south-america", 2, True),
    ("AR", "Argentina", "south-america", 2, True),
    ("CL", "Chile", "south-america", 2, True),
    ("PE", "Peru", "south-america", 2, True),
    ("CO", "Colombia", "south-america", 2, True),
    ("EC", "Ecuador", "south-america", 3, True),
    ("PY", "Paraguay", "south-america", 3, True),
    ("UY", "Uruguay", "south-america", 2, True),
    ("BO", "Bolivia", "south-america", 3, False),
    # Western & Northern Europe
    ("GB", "United Kingdom", "europe", 1, True),
    ("DE", "Germany", "europe", 1, True),
    ("FR", "France", "europe", 1, True),
    ("ES", "Spain", "europe", 1, True),
    ("PT", "Portugal", "europe", 1, True),
    ("IT", "Italy", "europe", 1, True),
    ("NL", "Netherlands", "europe", 1, True),
    ("BE", "Belgium", "europe", 1, True),
    ("CH", "Switzerland", "europe", 1, True),
    ("AT", "Austria", "europe", 1, True),
    ("IE", "Ireland", "europe", 1, True),
    ("SE", "Sweden", "europe", 1, True),
    ("NO", "Norway", "europe", 1, True),
    ("FI", "Finland", "europe", 1, True),
    ("DK", "Denmark", "europe", 1, True),
    # Eastern Europe & Baltics
    ("PL", "Poland", "europe", 2, True),
    ("LT", "Lithuania", "europe", 2, True),
    ("LV", "Latvia", "europe", 2, True),
    ("EE", "Estonia", "europe", 2, True),
    ("RO", "Romania", "europe", 2, True),
    ("BG", "Bulgaria", "europe", 2, True),
    ("GR", "Greece", "europe", 2, True),
    ("CY", "Cyprus", "europe", 2, True),
    ("HR", "Croatia", "europe", 2, True),
    ("UA", "Ukraine", "europe", 2, True),
    # Africa
    ("NG", "Nigeria", "africa", 3, True),
    ("KE", "Kenya", "africa", 3, True),
    ("MZ", "Mozambique", "africa", 3, True),
    ("ZM", "Zambia", "africa", 3, True),
    ("RW", "Rwanda", "africa", 3, True),
    ("SZ", "Eswatini", "africa", 3, True),
    ("MW", "Malawi", "africa", 3, True),
    ("BJ", "Benin", "africa", 3, True),
    ("ZA", "South Africa", "africa", 2, False),
    ("EG", "Egypt", "africa", 2, False),
    ("GH", "Ghana", "africa", 3, False),
    ("TZ", "Tanzania", "africa", 3, False),
    ("BW", "Botswana", "africa", 3, True),
    ("MG", "Madagascar", "africa", 3, True),
    # Middle East & Asia
    ("TR", "Turkey", "middle-east", 2, False),
    ("IL", "Israel", "middle-east", 1, False),
    ("AE", "United Arab Emirates", "middle-east", 1, False),
    ("JP", "Japan", "asia", 1, True),
    ("KR", "South Korea", "asia", 1, False),
    ("SG", "Singapore", "asia", 1, False),
    ("MY", "Malaysia", "asia", 2, True),
    ("PH", "Philippines", "asia", 2, True),
    ("ID", "Indonesia", "asia", 2, True),
    ("IN", "India", "asia", 2, False),
    ("TH", "Thailand", "asia", 2, False),
    ("VN", "Vietnam", "asia", 2, False),
    ("MN", "Mongolia", "asia", 3, True),
    # Oceania
    ("AU", "Australia", "oceania", 1, True),
    ("NZ", "New Zealand", "oceania", 1, True),
    ("FJ", "Fiji", "oceania", 3, True),
    ("PG", "Papua New Guinea", "oceania", 3, False),
)


@lru_cache(maxsize=1)
def all_countries() -> tuple[Country, ...]:
    """Every country in the gazetteer."""
    return tuple(Country(*row) for row in _COUNTRIES)


@lru_cache(maxsize=None)
def country_by_iso2(iso2: str) -> Country:
    """Look a country up by its ISO-3166 alpha-2 code."""
    for country in all_countries():
        if country.iso2 == iso2:
            return country
    raise DatasetError(f"unknown country code: {iso2!r}")


@lru_cache(maxsize=1)
def starlink_covered_countries() -> tuple[Country, ...]:
    """Countries with Starlink consumer coverage in the gazetteer."""
    return tuple(c for c in all_countries() if c.starlink)
