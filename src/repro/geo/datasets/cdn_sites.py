"""CDN edge sites (Cloudflare-like anycast footprint).

Cloudflare operates 300+ anycast sites; we embed ~110 covering every region
the paper's measurements touch. The structurally important facts preserved
here: CDN sites exist in most capitals — including Maputo, Kigali,
Guatemala City and Port-au-Prince — which is exactly why *terrestrial* users
in those cities see single-digit-millisecond CDN RTTs while Starlink users,
whose traffic exits at a distant PoP, are mapped to caches near that PoP.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import DatasetError
from repro.geo.coordinates import GeoPoint


@dataclass(frozen=True)
class CdnSite:
    """An anycast CDN edge location."""

    name: str
    iso2: str
    lat_deg: float
    lon_deg: float

    @property
    def location(self) -> GeoPoint:
        return GeoPoint(self.lat_deg, self.lon_deg, 0.0)


# (name, iso2, lat, lon)
_CDN_SITES: tuple[tuple[str, str, float, float], ...] = (
    # North America
    ("Seattle", "US", 47.61, -122.33),
    ("San Jose", "US", 37.34, -121.89),
    ("Los Angeles", "US", 34.05, -118.24),
    ("Denver", "US", 39.74, -104.99),
    ("Dallas", "US", 32.78, -96.80),
    ("Chicago", "US", 41.88, -87.63),
    ("Atlanta", "US", 33.75, -84.39),
    ("Miami", "US", 25.76, -80.19),
    ("New York", "US", 40.71, -74.01),
    ("Ashburn", "US", 39.04, -77.49),
    ("Toronto", "CA", 43.65, -79.38),
    ("Vancouver", "CA", 49.28, -123.12),
    ("Montreal", "CA", 45.50, -73.57),
    ("Mexico City", "MX", 19.43, -99.13),
    # Central America & Caribbean
    ("Guatemala City", "GT", 14.63, -90.51),
    ("San Jose CR", "CR", 9.93, -84.08),
    ("Panama City", "PA", 8.98, -79.52),
    ("Port-au-Prince", "HT", 18.54, -72.34),
    ("Santo Domingo", "DO", 18.49, -69.89),
    ("Kingston", "JM", 17.97, -76.79),
    # South America
    ("Sao Paulo", "BR", -23.55, -46.63),
    ("Rio de Janeiro", "BR", -22.91, -43.17),
    ("Fortaleza", "BR", -3.73, -38.53),
    ("Buenos Aires", "AR", -34.60, -58.38),
    ("Santiago", "CL", -33.45, -70.67),
    ("Lima", "PE", -12.05, -77.04),
    ("Bogota", "CO", 4.71, -74.07),
    ("Quito", "EC", -0.18, -78.47),
    ("Asuncion", "PY", -25.26, -57.58),
    ("Montevideo", "UY", -34.90, -56.16),
    # Europe
    ("London", "GB", 51.51, -0.13),
    ("Manchester", "GB", 53.48, -2.24),
    ("Frankfurt", "DE", 50.11, 8.68),
    ("Berlin", "DE", 52.52, 13.40),
    ("Munich", "DE", 48.14, 11.58),
    ("Dusseldorf", "DE", 51.23, 6.77),
    ("Paris", "FR", 48.86, 2.35),
    ("Marseille", "FR", 43.30, 5.37),
    ("Madrid", "ES", 40.42, -3.70),
    ("Barcelona", "ES", 41.39, 2.17),
    ("Lisbon", "PT", 38.72, -9.14),
    ("Rome", "IT", 41.90, 12.50),
    ("Milan", "IT", 45.46, 9.19),
    ("Amsterdam", "NL", 52.37, 4.90),
    ("Brussels", "BE", 50.85, 4.35),
    ("Zurich", "CH", 47.37, 8.54),
    ("Vienna", "AT", 48.21, 16.37),
    ("Dublin", "IE", 53.35, -6.26),
    ("Stockholm", "SE", 59.33, 18.07),
    ("Oslo", "NO", 59.91, 10.75),
    ("Helsinki", "FI", 60.17, 24.94),
    ("Copenhagen", "DK", 55.68, 12.57),
    ("Warsaw", "PL", 52.23, 21.01),
    ("Riga", "LV", 56.95, 24.11),
    ("Tallinn", "EE", 59.44, 24.75),
    ("Bucharest", "RO", 44.43, 26.10),
    ("Sofia", "BG", 42.70, 23.32),
    ("Athens", "GR", 37.98, 23.73),
    ("Nicosia", "CY", 35.19, 33.38),
    ("Zagreb", "HR", 45.81, 15.98),
    ("Kyiv", "UA", 50.45, 30.52),
    # Africa
    ("Lagos", "NG", 6.52, 3.38),
    ("Accra", "GH", 5.60, -0.19),
    ("Nairobi", "KE", -1.29, 36.82),
    ("Mombasa", "KE", -4.04, 39.67),
    ("Maputo", "MZ", -25.97, 32.57),
    ("Kigali", "RW", -1.94, 30.06),
    ("Johannesburg", "ZA", -26.20, 28.05),
    ("Cape Town", "ZA", -33.92, 18.42),
    ("Durban", "ZA", -29.86, 31.03),
    ("Cairo", "EG", 30.04, 31.24),
    ("Dar es Salaam", "TZ", -6.79, 39.21),
    ("Antananarivo", "MG", -18.88, 47.51),
    # Middle East
    ("Istanbul", "TR", 41.01, 28.98),
    ("Tel Aviv", "IL", 32.08, 34.78),
    ("Dubai", "AE", 25.20, 55.27),
    # Asia
    ("Tokyo", "JP", 35.68, 139.69),
    ("Osaka", "JP", 34.69, 135.50),
    ("Seoul", "KR", 37.57, 126.98),
    ("Singapore", "SG", 1.35, 103.82),
    ("Kuala Lumpur", "MY", 3.14, 101.69),
    ("Manila", "PH", 14.60, 120.98),
    ("Cebu", "PH", 10.32, 123.89),
    ("Jakarta", "ID", -6.21, 106.85),
    ("Mumbai", "IN", 19.08, 72.88),
    ("Bangkok", "TH", 13.76, 100.50),
    ("Hanoi", "VN", 21.03, 105.85),
    ("Ulaanbaatar", "MN", 47.89, 106.91),
    # Oceania
    ("Sydney", "AU", -33.87, 151.21),
    ("Melbourne", "AU", -37.81, 144.96),
    ("Perth", "AU", -31.95, 115.86),
    ("Auckland", "NZ", -36.85, 174.76),
    ("Christchurch", "NZ", -43.53, 172.64),
    ("Suva", "FJ", -18.14, 178.44),
)


@lru_cache(maxsize=1)
def all_cdn_sites() -> tuple[CdnSite, ...]:
    """Every CDN edge location in the gazetteer."""
    return tuple(CdnSite(*row) for row in _CDN_SITES)


@lru_cache(maxsize=None)
def cdn_site_by_name(name: str) -> CdnSite:
    """Look a CDN site up by its exact name."""
    for site in all_cdn_sites():
        if site.name == name:
            return site
    raise DatasetError(f"unknown CDN site: {name!r}")
