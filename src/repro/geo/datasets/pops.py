"""Starlink points of presence (PoPs) and the country→PoP assignment.

The paper (Fig. 2) shows 22 operational PoPs. A Starlink subscriber's traffic
always enters the Internet at their *assigned* PoP — which for countries
without local ground infrastructure can be on another continent (southern and
eastern African subscribers exit at Frankfurt, per the paper and Mohan et
al. WWW'24). We embed the 22 sites and an assignment table: nearest PoP by
default, with explicit overrides where the real assignment is documented to
differ from pure proximity.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import DatasetError
from repro.geo.coordinates import GeoPoint, great_circle_km
from repro.geo.datasets.countries import country_by_iso2


@dataclass(frozen=True)
class PopSite:
    """A Starlink point of presence: where subscriber traffic exits to the Internet."""

    name: str
    iso2: str
    lat_deg: float
    lon_deg: float

    @property
    def location(self) -> GeoPoint:
        return GeoPoint(self.lat_deg, self.lon_deg, 0.0)


# The 22 operational PoPs shown in the paper's Fig. 2 world map.
_POPS: tuple[tuple[str, str, float, float], ...] = (
    ("Seattle", "US", 47.61, -122.33),
    ("Los Angeles", "US", 34.05, -118.24),
    ("Denver", "US", 39.74, -104.99),
    ("Dallas", "US", 32.78, -96.80),
    ("Chicago", "US", 41.88, -87.63),
    ("Atlanta", "US", 33.75, -84.39),
    ("New York", "US", 40.71, -74.01),
    ("Toronto", "CA", 43.65, -79.38),
    ("Queretaro", "MX", 20.59, -100.39),
    ("Bogota", "CO", 4.71, -74.07),
    ("Lima", "PE", -12.05, -77.04),
    ("Santiago", "CL", -33.45, -70.67),
    ("Sao Paulo", "BR", -23.55, -46.63),
    ("London", "GB", 51.51, -0.13),
    ("Frankfurt", "DE", 50.11, 8.68),
    ("Madrid", "ES", 40.42, -3.70),
    ("Milan", "IT", 45.46, 9.19),
    ("Warsaw", "PL", 52.23, 21.01),
    ("Lagos", "NG", 6.52, 3.38),
    ("Tokyo", "JP", 35.68, 139.69),
    ("Sydney", "AU", -33.87, 151.21),
    ("Auckland", "NZ", -36.85, 174.76),
)

# Documented cases where the assigned PoP is NOT the geographically nearest
# one. Southern/eastern African subscribers exit at Frankfurt (paper §3.2);
# Indian-Ocean and some central-Asian coverage follows the same pattern.
_ASSIGNMENT_OVERRIDES: dict[str, str] = {
    "MZ": "Frankfurt",
    "KE": "Frankfurt",
    "ZM": "Frankfurt",
    "RW": "Frankfurt",
    "SZ": "Lagos",
    "MW": "Frankfurt",
    "BW": "Frankfurt",
    "MG": "Frankfurt",
    "BJ": "Lagos",
    "MN": "Tokyo",
    "FJ": "Auckland",
    # Caribbean/Central-American traffic exits in the continental US / Mexico.
    "HT": "Atlanta",
    "DO": "Atlanta",
    "JM": "Atlanta",
    "GT": "Queretaro",
    "HN": "Queretaro",
    "SV": "Queretaro",
    "CR": "Dallas",
    "PA": "Atlanta",
    # Eastern Europe / eastern Mediterranean are served from Frankfurt.
    "CY": "Frankfurt",
    "GR": "Frankfurt",
    "BG": "Frankfurt",
    "RO": "Frankfurt",
    "LT": "Frankfurt",
    "UA": "Warsaw",
    # South-east Asia exits at Tokyo until regional PoPs exist.
    "MY": "Tokyo",
    "PH": "Tokyo",
    "ID": "Tokyo",
}


@lru_cache(maxsize=1)
def all_pops() -> tuple[PopSite, ...]:
    """The 22 operational Starlink PoPs."""
    return tuple(PopSite(*row) for row in _POPS)


@lru_cache(maxsize=None)
def pop_by_name(name: str) -> PopSite:
    """Look a PoP up by its exact name."""
    for pop in all_pops():
        if pop.name == name:
            return pop
    raise DatasetError(f"unknown PoP: {name!r}")


@lru_cache(maxsize=None)
def assigned_pop(iso2: str, lat_deg: float | None = None, lon_deg: float | None = None) -> PopSite:
    """The PoP serving subscribers in a country.

    Uses the documented override table when present; otherwise the
    geographically nearest PoP to the given location (or to the country's
    first gazetteer city when no location is supplied).
    """
    country_by_iso2(iso2)
    override = _ASSIGNMENT_OVERRIDES.get(iso2)
    if override is not None:
        return pop_by_name(override)
    if lat_deg is None or lon_deg is None:
        from repro.geo.datasets.cities import cities_in_country

        cities = cities_in_country(iso2)
        if not cities:
            raise DatasetError(f"no gazetteer city for country {iso2!r}")
        lat_deg, lon_deg = cities[0].lat_deg, cities[0].lon_deg
    here = GeoPoint(lat_deg, lon_deg, 0.0)
    return min(all_pops(), key=lambda pop: great_circle_km(here, pop.location))
