"""Embedded location gazetteer.

The paper's measurements depend on *where infrastructure is*: Starlink's 22
PoPs and ~150 ground stations are concentrated in North America, Europe,
parts of South America and Oceania, with almost nothing in southern/eastern
Africa — while CDN providers such as Cloudflare have sites in most capital
cities worldwide. This package embeds a faithful (publicly documented)
approximation of that footprint so the simulation reproduces the structural
pathologies (e.g. Maputo traffic exiting at Frankfurt).
"""

from repro.geo.datasets.countries import (
    Country,
    all_countries,
    country_by_iso2,
    starlink_covered_countries,
)
from repro.geo.datasets.cities import City, all_cities, cities_in_country, city_by_name
from repro.geo.datasets.pops import PopSite, all_pops, pop_by_name, assigned_pop
from repro.geo.datasets.ground_stations import GroundStationSite, all_ground_stations
from repro.geo.datasets.cdn_sites import CdnSite, all_cdn_sites, cdn_site_by_name

__all__ = [
    "Country",
    "all_countries",
    "country_by_iso2",
    "starlink_covered_countries",
    "City",
    "all_cities",
    "cities_in_country",
    "city_by_name",
    "PopSite",
    "all_pops",
    "pop_by_name",
    "assigned_pop",
    "GroundStationSite",
    "all_ground_stations",
    "CdnSite",
    "all_cdn_sites",
    "cdn_site_by_name",
]
