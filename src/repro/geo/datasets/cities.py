"""World cities used as measurement vantage points.

Each city carries a population weight (millions, used to weight how many
synthetic speed tests originate there) and inherits its country's
infrastructure tier and Starlink-coverage flag via ``countries``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import DatasetError
from repro.geo.coordinates import GeoPoint
from repro.geo.datasets.countries import Country, country_by_iso2


@dataclass(frozen=True)
class City:
    """A measurement vantage city."""

    name: str
    iso2: str
    lat_deg: float
    lon_deg: float
    population_m: float

    @property
    def location(self) -> GeoPoint:
        """The city centre as a surface point."""
        return GeoPoint(self.lat_deg, self.lon_deg, 0.0)

    @property
    def country(self) -> Country:
        """The country record this city belongs to."""
        return country_by_iso2(self.iso2)


# (name, iso2, lat, lon, population in millions)
_CITIES: tuple[tuple[str, str, float, float, float], ...] = (
    # --- North America
    ("Seattle", "US", 47.61, -122.33, 4.0),
    ("Los Angeles", "US", 34.05, -118.24, 13.2),
    ("Denver", "US", 39.74, -104.99, 2.9),
    ("Dallas", "US", 32.78, -96.80, 7.6),
    ("Chicago", "US", 41.88, -87.63, 9.5),
    ("Atlanta", "US", 33.75, -84.39, 6.1),
    ("New York", "US", 40.71, -74.01, 19.8),
    ("Miami", "US", 25.76, -80.19, 6.1),
    ("Boise", "US", 43.62, -116.20, 0.8),
    ("Anchorage", "US", 61.22, -149.90, 0.4),
    ("Toronto", "CA", 43.65, -79.38, 6.2),
    ("Vancouver", "CA", 49.28, -123.12, 2.6),
    ("Montreal", "CA", 45.50, -73.57, 4.2),
    ("Winnipeg", "CA", 49.90, -97.14, 0.8),
    ("Mexico City", "MX", 19.43, -99.13, 21.8),
    ("Monterrey", "MX", 25.69, -100.32, 5.3),
    # --- Central America & Caribbean
    ("Guatemala City", "GT", 14.63, -90.51, 3.0),
    ("Tegucigalpa", "HN", 14.07, -87.19, 1.4),
    ("San Salvador", "SV", 13.69, -89.22, 1.1),
    ("San Jose CR", "CR", 9.93, -84.08, 1.4),
    ("Panama City", "PA", 8.98, -79.52, 1.9),
    ("Port-au-Prince", "HT", 18.54, -72.34, 2.8),
    ("Santo Domingo", "DO", 18.49, -69.89, 3.3),
    ("Kingston", "JM", 17.97, -76.79, 1.2),
    # --- South America
    ("Sao Paulo", "BR", -23.55, -46.63, 22.4),
    ("Rio de Janeiro", "BR", -22.91, -43.17, 13.5),
    ("Manaus", "BR", -3.12, -60.02, 2.3),
    ("Brasilia", "BR", -15.79, -47.88, 4.8),
    ("Buenos Aires", "AR", -34.60, -58.38, 15.4),
    ("Cordoba AR", "AR", -31.42, -64.18, 1.6),
    ("Santiago", "CL", -33.45, -70.67, 6.9),
    ("Punta Arenas", "CL", -53.16, -70.91, 0.14),
    ("Lima", "PE", -12.05, -77.04, 11.2),
    ("Bogota", "CO", 4.71, -74.07, 11.3),
    ("Quito", "EC", -0.18, -78.47, 2.0),
    ("Asuncion", "PY", -25.26, -57.58, 3.4),
    ("Montevideo", "UY", -34.90, -56.16, 1.8),
    # --- Western & Northern Europe
    ("London", "GB", 51.51, -0.13, 9.6),
    ("Manchester", "GB", 53.48, -2.24, 2.9),
    ("Edinburgh", "GB", 55.95, -3.19, 0.9),
    ("Berlin", "DE", 52.52, 13.40, 3.8),
    ("Frankfurt", "DE", 50.11, 8.68, 2.7),
    ("Munich", "DE", 48.14, 11.58, 2.6),
    ("Paris", "FR", 48.86, 2.35, 11.2),
    ("Marseille", "FR", 43.30, 5.37, 1.8),
    ("Madrid", "ES", 40.42, -3.70, 6.8),
    ("Barcelona", "ES", 41.39, 2.17, 5.7),
    ("Seville", "ES", 37.39, -5.98, 1.5),
    ("Lisbon", "PT", 38.72, -9.14, 3.0),
    ("Rome", "IT", 41.90, 12.50, 4.3),
    ("Milan", "IT", 45.46, 9.19, 3.2),
    ("Amsterdam", "NL", 52.37, 4.90, 2.5),
    ("Brussels", "BE", 50.85, 4.35, 2.1),
    ("Zurich", "CH", 47.37, 8.54, 1.4),
    ("Vienna", "AT", 48.21, 16.37, 2.0),
    ("Dublin", "IE", 53.35, -6.26, 1.4),
    ("Stockholm", "SE", 59.33, 18.07, 1.7),
    ("Oslo", "NO", 59.91, 10.75, 1.1),
    ("Helsinki", "FI", 60.17, 24.94, 1.3),
    ("Copenhagen", "DK", 55.68, 12.57, 1.4),
    # --- Eastern Europe & Baltics
    ("Warsaw", "PL", 52.23, 21.01, 1.8),
    ("Krakow", "PL", 50.06, 19.94, 0.8),
    ("Vilnius", "LT", 54.69, 25.28, 0.6),
    ("Kaunas", "LT", 54.90, 23.91, 0.3),
    ("Riga", "LV", 56.95, 24.11, 0.6),
    ("Tallinn", "EE", 59.44, 24.75, 0.5),
    ("Bucharest", "RO", 44.43, 26.10, 1.8),
    ("Sofia", "BG", 42.70, 23.32, 1.3),
    ("Athens", "GR", 37.98, 23.73, 3.2),
    ("Nicosia", "CY", 35.19, 33.38, 0.3),
    ("Limassol", "CY", 34.68, 33.04, 0.2),
    ("Zagreb", "HR", 45.81, 15.98, 0.8),
    ("Kyiv", "UA", 50.45, 30.52, 3.0),
    # --- Africa
    ("Lagos", "NG", 6.52, 3.38, 15.4),
    ("Abuja", "NG", 9.06, 7.50, 3.8),
    ("Nairobi", "KE", -1.29, 36.82, 5.1),
    ("Mombasa", "KE", -4.04, 39.67, 1.3),
    ("Maputo", "MZ", -25.97, 32.57, 1.1),
    ("Beira", "MZ", -19.84, 34.84, 0.5),
    ("Lusaka", "ZM", -15.39, 28.32, 3.0),
    ("Kigali", "RW", -1.94, 30.06, 1.2),
    ("Mbabane", "SZ", -26.31, 31.14, 0.1),
    ("Lilongwe", "MW", -13.96, 33.77, 1.1),
    ("Cotonou", "BJ", 6.37, 2.39, 0.7),
    ("Johannesburg", "ZA", -26.20, 28.05, 6.0),
    ("Cape Town", "ZA", -33.92, 18.42, 4.8),
    ("Cairo", "EG", 30.04, 31.24, 21.3),
    ("Accra", "GH", 5.60, -0.19, 2.6),
    ("Dar es Salaam", "TZ", -6.79, 39.21, 7.4),
    ("Gaborone", "BW", -24.63, 25.92, 0.3),
    ("Antananarivo", "MG", -18.88, 47.51, 3.7),
    # --- Middle East & Asia
    ("Istanbul", "TR", 41.01, 28.98, 15.6),
    ("Tel Aviv", "IL", 32.08, 34.78, 4.4),
    ("Dubai", "AE", 25.20, 55.27, 3.5),
    ("Tokyo", "JP", 35.68, 139.69, 37.3),
    ("Osaka", "JP", 34.69, 135.50, 19.1),
    ("Sapporo", "JP", 43.06, 141.35, 2.7),
    ("Seoul", "KR", 37.57, 126.98, 25.5),
    ("Singapore", "SG", 1.35, 103.82, 5.9),
    ("Kuala Lumpur", "MY", 3.14, 101.69, 8.4),
    ("Manila", "PH", 14.60, 120.98, 14.4),
    ("Cebu", "PH", 10.32, 123.89, 3.0),
    ("Jakarta", "ID", -6.21, 106.85, 10.9),
    ("Mumbai", "IN", 19.08, 72.88, 20.7),
    ("Bangkok", "TH", 13.76, 100.50, 10.7),
    ("Hanoi", "VN", 21.03, 105.85, 8.1),
    ("Ulaanbaatar", "MN", 47.89, 106.91, 1.6),
    # --- Oceania
    ("Sydney", "AU", -33.87, 151.21, 5.4),
    ("Melbourne", "AU", -37.81, 144.96, 5.1),
    ("Perth", "AU", -31.95, 115.86, 2.1),
    ("Alice Springs", "AU", -23.70, 133.88, 0.03),
    ("Auckland", "NZ", -36.85, 174.76, 1.7),
    ("Christchurch", "NZ", -43.53, 172.64, 0.4),
    ("Suva", "FJ", -18.14, 178.44, 0.2),
    ("Port Moresby", "PG", -9.44, 147.18, 0.4),
)


@lru_cache(maxsize=1)
def all_cities() -> tuple[City, ...]:
    """Every vantage city in the gazetteer."""
    return tuple(City(*row) for row in _CITIES)


@lru_cache(maxsize=None)
def cities_in_country(iso2: str) -> tuple[City, ...]:
    """All vantage cities in a country (validates the country code)."""
    country_by_iso2(iso2)
    return tuple(c for c in all_cities() if c.iso2 == iso2)


@lru_cache(maxsize=None)
def city_by_name(name: str) -> City:
    """Look a city up by its exact name."""
    for city in all_cities():
        if city.name == name:
            return city
    raise DatasetError(f"unknown city: {name!r}")


def region_under(lat_deg: float, lon_deg: float, max_distance_km: float = 1500.0) -> str | None:
    """The gazetteer region beneath a point, or None over open ocean.

    Resolution is the vantage-city set: the nearest city within
    ``max_distance_km`` decides the region — good enough to know which
    content bubble a satellite footprint is entering.
    """
    from repro.geo.coordinates import GeoPoint, great_circle_km

    if max_distance_km <= 0:
        raise DatasetError(f"max distance must be positive, got {max_distance_km}")
    here = GeoPoint(lat_deg, lon_deg, 0.0)
    best_city = min(all_cities(), key=lambda c: great_circle_km(here, c.location))
    if great_circle_km(here, best_city.location) > max_distance_km:
        return None
    return best_city.country.region
