"""Starlink ground-station (gateway) sites.

Real Starlink operates ~150 gateway sites, but their *coverage* is what
matters: dense in North America, Europe, Oceania and parts of South America;
a single West-African cluster (Nigeria); and nothing across southern or
eastern Africa — forcing those users' traffic over inter-satellite links to
Europe. We embed 48 representative sites preserving that coverage map. Each
site names its backhaul PoP (the PoP its fiber connects to).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.geo.coordinates import GeoPoint
from repro.geo.datasets.pops import pop_by_name


@dataclass(frozen=True)
class GroundStationSite:
    """A Starlink gateway: satellites downlink here; fiber backhauls to a PoP."""

    name: str
    iso2: str
    lat_deg: float
    lon_deg: float
    pop_name: str

    @property
    def location(self) -> GeoPoint:
        return GeoPoint(self.lat_deg, self.lon_deg, 0.0)

    @property
    def pop(self):
        """The PoP this gateway backhauls to."""
        return pop_by_name(self.pop_name)


# (name, iso2, lat, lon, backhaul PoP)
_GROUND_STATIONS: tuple[tuple[str, str, float, float, str], ...] = (
    # United States (densest deployment)
    ("North Bend WA", "US", 47.50, -121.79, "Seattle"),
    ("Merrillan WI", "US", 44.45, -90.84, "Chicago"),
    ("Conrad MT", "US", 48.17, -111.95, "Seattle"),
    ("Colburn ID", "US", 48.37, -116.52, "Seattle"),
    ("Hawthorne CA", "US", 33.92, -118.33, "Los Angeles"),
    ("Baja CA", "US", 32.57, -116.63, "Los Angeles"),
    ("Litchfield Park AZ", "US", 33.49, -112.36, "Los Angeles"),
    ("Greenville TX", "US", 33.14, -96.11, "Dallas"),
    ("Sanderson TX", "US", 30.14, -102.39, "Dallas"),
    ("Boca Chica TX", "US", 25.99, -97.19, "Dallas"),
    ("Robertsdale AL", "US", 30.55, -87.71, "Atlanta"),
    ("Fayetteville GA", "US", 33.45, -84.45, "Atlanta"),
    ("Cape Canaveral FL", "US", 28.39, -80.60, "Atlanta"),
    ("Hampton GA", "US", 33.38, -84.28, "Atlanta"),
    ("Loring ME", "US", 46.95, -67.89, "New York"),
    ("Elkton VA", "US", 38.41, -78.62, "New York"),
    ("Kuna ID", "US", 43.49, -116.42, "Denver"),
    ("Wolcott CO", "US", 39.70, -106.68, "Denver"),
    ("Prudhoe Bay AK", "US", 70.25, -148.34, "Seattle"),
    # Canada
    ("St. John's NL", "CA", 47.56, -52.71, "Toronto"),
    ("High River AB", "CA", 50.58, -113.87, "Seattle"),
    ("Kamloops BC", "CA", 50.67, -120.33, "Seattle"),
    # Mexico / Latin America
    ("Cutzamala MX", "MX", 18.97, -100.25, "Queretaro"),
    ("Villa de Reyes MX", "MX", 21.80, -100.93, "Queretaro"),
    ("Pedro Leopoldo BR", "BR", -19.62, -44.04, "Sao Paulo"),
    ("Caucaia BR", "BR", -3.74, -38.66, "Sao Paulo"),
    ("Santiago GW CL", "CL", -33.36, -70.95, "Santiago"),
    ("Puerto Montt CL", "CL", -41.47, -72.94, "Santiago"),
    ("Lurin PE", "PE", -12.27, -76.89, "Lima"),
    ("Tenjo CO", "CO", 4.87, -74.15, "Bogota"),
    # Europe
    ("Goonhilly GB", "GB", 50.05, -5.18, "London"),
    ("Chalfont GB", "GB", 51.64, -0.57, "London"),
    ("Aerzen DE", "DE", 52.05, 9.26, "Frankfurt"),
    ("Usingen DE", "DE", 50.34, 8.54, "Frankfurt"),
    ("Villenave FR", "FR", 44.77, -0.55, "London"),
    ("Alcala ES", "ES", 40.49, -3.36, "Madrid"),
    ("Sevilla GW ES", "ES", 37.42, -5.90, "Madrid"),
    ("Gavirate IT", "IT", 45.85, 8.72, "Milan"),
    ("Ka Lamia GR", "GR", 38.90, 22.43, "Frankfurt"),
    ("Wola PL", "PL", 52.20, 20.90, "Warsaw"),
    # Africa (Nigeria only — the coverage gap is the point)
    ("Epe NG", "NG", 6.58, 3.98, "Lagos"),
    # Asia
    ("Chitose JP", "JP", 42.79, 141.67, "Tokyo"),
    ("Ibaraki JP", "JP", 36.31, 140.57, "Tokyo"),
    # Oceania
    ("Broken Hill AU", "AU", -31.96, 141.47, "Sydney"),
    ("Merredin AU", "AU", -31.48, 118.28, "Sydney"),
    ("Wagga Wagga AU", "AU", -35.12, 147.37, "Sydney"),
    ("Clevedon NZ", "NZ", -36.99, 175.04, "Auckland"),
    ("Cromwell NZ", "NZ", -45.05, 169.20, "Auckland"),
)


@lru_cache(maxsize=1)
def all_ground_stations() -> tuple[GroundStationSite, ...]:
    """Every gateway site in the gazetteer."""
    return tuple(GroundStationSite(*row) for row in _GROUND_STATIONS)
