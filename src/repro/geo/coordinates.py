"""Geographic and Cartesian coordinates on a spherical Earth.

The simulation uses the spherical Earth model throughout: the ~0.3% error of
ignoring oblateness is far below the latency noise the paper's measurements
carry, and it keeps every geometry routine analytic and fast.

Conventions:

* latitude in degrees, positive north, range [-90, 90]
* longitude in degrees, positive east, range [-180, 180]
* altitude in kilometres above the mean Earth surface
* ECEF frame: x through (0N, 0E), z through the north pole
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import EARTH_RADIUS_KM
from repro.errors import GeodesyError


def _validate_lat_lon(lat_deg: float, lon_deg: float) -> None:
    if not -90.0 <= lat_deg <= 90.0:
        raise GeodesyError(f"latitude {lat_deg} out of range [-90, 90]")
    if not -180.0 <= lon_deg <= 180.0:
        raise GeodesyError(f"longitude {lon_deg} out of range [-180, 180]")


def normalize_longitude(lon_deg: float) -> float:
    """Wrap a longitude into [-180, 180)."""
    wrapped = math.fmod(lon_deg + 180.0, 360.0)
    if wrapped < 0.0:
        wrapped += 360.0
    return wrapped - 180.0


@dataclass(frozen=True)
class EcefPoint:
    """A point in the Earth-centred Earth-fixed Cartesian frame (km)."""

    x: float
    y: float
    z: float

    def distance_km(self, other: "EcefPoint") -> float:
        """Straight-line (chord) distance to ``other``."""
        return math.dist((self.x, self.y, self.z), (other.x, other.y, other.z))

    def norm_km(self) -> float:
        """Distance from the Earth's centre."""
        return math.sqrt(self.x * self.x + self.y * self.y + self.z * self.z)


@dataclass(frozen=True)
class GeoPoint:
    """A geographic point: latitude/longitude in degrees, altitude in km."""

    lat_deg: float
    lon_deg: float
    alt_km: float = 0.0

    def __post_init__(self) -> None:
        _validate_lat_lon(self.lat_deg, self.lon_deg)
        if self.alt_km < -EARTH_RADIUS_KM:
            raise GeodesyError(f"altitude {self.alt_km} km below Earth centre")

    def to_ecef(self) -> EcefPoint:
        """Convert to the ECEF Cartesian frame."""
        lat = math.radians(self.lat_deg)
        lon = math.radians(self.lon_deg)
        r = EARTH_RADIUS_KM + self.alt_km
        cos_lat = math.cos(lat)
        return EcefPoint(
            x=r * cos_lat * math.cos(lon),
            y=r * cos_lat * math.sin(lon),
            z=r * math.sin(lat),
        )

    def surface(self) -> "GeoPoint":
        """The same point projected onto the Earth surface (altitude 0)."""
        if self.alt_km == 0.0:
            return self
        return GeoPoint(self.lat_deg, self.lon_deg, 0.0)


def great_circle_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle (surface) distance between two points, ignoring altitude.

    Uses the haversine formula, which is numerically stable for both very
    short and antipodal distances.
    """
    lat1, lon1 = math.radians(a.lat_deg), math.radians(a.lon_deg)
    lat2, lon2 = math.radians(b.lat_deg), math.radians(b.lon_deg)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def slant_range_km(a: GeoPoint, b: GeoPoint) -> float:
    """Straight-line distance between two points including altitudes.

    This is the length a radio or optical link actually travels, e.g. from a
    user terminal to a satellite overhead.
    """
    return a.to_ecef().distance_km(b.to_ecef())


def elevation_angle_deg(observer: GeoPoint, target: GeoPoint) -> float:
    """Elevation of ``target`` above the local horizon at ``observer``.

    Returns degrees in [-90, 90]; negative values mean the target is below
    the horizon.
    """
    obs = observer.to_ecef()
    tgt = target.to_ecef()
    dx, dy, dz = tgt.x - obs.x, tgt.y - obs.y, tgt.z - obs.z
    range_km = math.sqrt(dx * dx + dy * dy + dz * dz)
    if range_km == 0.0:
        raise GeodesyError("observer and target coincide")
    obs_norm = obs.norm_km()
    # Angle between the local up vector (obs/|obs|) and the line of sight.
    cos_zenith = (obs.x * dx + obs.y * dy + obs.z * dz) / (obs_norm * range_km)
    cos_zenith = max(-1.0, min(1.0, cos_zenith))
    return 90.0 - math.degrees(math.acos(cos_zenith))


def initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial great-circle bearing from ``a`` towards ``b`` (0..360, N=0)."""
    lat1, lat2 = math.radians(a.lat_deg), math.radians(b.lat_deg)
    dlon = math.radians(b.lon_deg - a.lon_deg)
    y = math.sin(dlon) * math.cos(lat2)
    x = math.cos(lat1) * math.sin(lat2) - math.sin(lat1) * math.cos(lat2) * math.cos(dlon)
    return math.degrees(math.atan2(y, x)) % 360.0


def destination_point(start: GeoPoint, bearing_deg: float, distance_km: float) -> GeoPoint:
    """The point ``distance_km`` along the great circle at ``bearing_deg``."""
    if distance_km < 0.0:
        raise GeodesyError(f"distance must be non-negative, got {distance_km}")
    ang = distance_km / EARTH_RADIUS_KM
    lat1 = math.radians(start.lat_deg)
    lon1 = math.radians(start.lon_deg)
    brg = math.radians(bearing_deg)
    lat2 = math.asin(
        math.sin(lat1) * math.cos(ang) + math.cos(lat1) * math.sin(ang) * math.cos(brg)
    )
    lon2 = lon1 + math.atan2(
        math.sin(brg) * math.sin(ang) * math.cos(lat1),
        math.cos(ang) - math.sin(lat1) * math.sin(lat2),
    )
    return GeoPoint(math.degrees(lat2), normalize_longitude(math.degrees(lon2)), 0.0)


def subsatellite_point(satellite: GeoPoint) -> GeoPoint:
    """The point on the surface directly beneath a satellite."""
    return satellite.surface()
