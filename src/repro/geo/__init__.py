"""Geodesy: coordinates, distances, and the embedded location gazetteer."""

from repro.geo.coordinates import (
    GeoPoint,
    EcefPoint,
    great_circle_km,
    slant_range_km,
    elevation_angle_deg,
    destination_point,
    initial_bearing_deg,
    subsatellite_point,
)
from repro.geo.datasets import (
    City,
    PopSite,
    GroundStationSite,
    CdnSite,
    all_cities,
    all_pops,
    all_ground_stations,
    all_cdn_sites,
    cities_in_country,
    city_by_name,
    starlink_covered_countries,
)

__all__ = [
    "GeoPoint",
    "EcefPoint",
    "great_circle_km",
    "slant_range_km",
    "elevation_angle_deg",
    "destination_point",
    "initial_bearing_deg",
    "subsatellite_point",
    "City",
    "PopSite",
    "GroundStationSite",
    "CdnSite",
    "all_cities",
    "all_pops",
    "all_ground_stations",
    "all_cdn_sites",
    "cities_in_country",
    "city_by_name",
    "starlink_covered_countries",
]
