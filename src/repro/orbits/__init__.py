"""Orbital mechanics: Walker constellations, propagation, visibility, passes."""

from repro.orbits.elements import (
    ShellConfig,
    SatelliteId,
    starlink_shell1,
    starlink_shell2,
    starlink_shell3,
    starlink_vleo,
    oneweb_phase1,
    all_shell_presets,
)
from repro.orbits.walker import Constellation, build_walker_delta
from repro.orbits.visibility import (
    VisibleSatellite,
    visible_satellites,
    nearest_visible_satellite,
    nearest_visible_satellites,
    coverage_fraction,
)
from repro.orbits.passes import PassWindow, predict_passes, next_pass
from repro.orbits.multi import MultiShellConstellation, FleetSatellite
from repro.orbits.churn import ChurnReport, access_churn

__all__ = [
    "ShellConfig",
    "SatelliteId",
    "starlink_shell1",
    "starlink_shell2",
    "starlink_shell3",
    "starlink_vleo",
    "oneweb_phase1",
    "all_shell_presets",
    "Constellation",
    "build_walker_delta",
    "VisibleSatellite",
    "visible_satellites",
    "nearest_visible_satellite",
    "nearest_visible_satellites",
    "coverage_fraction",
    "PassWindow",
    "predict_passes",
    "next_pass",
    "MultiShellConstellation",
    "FleetSatellite",
    "ChurnReport",
    "access_churn",
]
