"""Satellite pass prediction over a ground location.

A *pass* is a contiguous interval during which one satellite stays above the
minimum elevation from a fixed point — 5 to 10 minutes for Starlink
Shell 1, per the paper. Pass prediction drives the video-striping scheduler
(:mod:`repro.spacecdn.striping`): stripe *k* of a video is placed on the
satellite that will be overhead while stripe *k* plays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import MIN_ELEVATION_USER_DEG
from repro.errors import VisibilityError
from repro.geo.coordinates import GeoPoint
from repro.orbits.visibility import elevations_deg
from repro.orbits.walker import Constellation


@dataclass(frozen=True)
class PassWindow:
    """One visibility window of one satellite over a ground point."""

    satellite: int
    start_s: float
    end_s: float
    max_elevation_deg: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def contains(self, t_s: float) -> bool:
        """Whether ``t_s`` falls inside this window."""
        return self.start_s <= t_s <= self.end_s


def predict_passes(
    constellation: Constellation,
    point: GeoPoint,
    start_s: float,
    duration_s: float,
    step_s: float = 10.0,
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
) -> list[PassWindow]:
    """All passes over ``point`` in ``[start_s, start_s + duration_s]``.

    Scans elevations on a fixed grid; window edges are resolved to the grid
    step, which is sufficient for cache-scheduling purposes (a 10 s error on
    a 6-minute pass is negligible).

    Returns windows sorted by start time.
    """
    if duration_s <= 0 or step_s <= 0:
        raise VisibilityError("duration and step must be positive")

    times = np.arange(start_s, start_s + duration_s + step_s / 2.0, step_s)
    # elevation matrix: rows = times, cols = satellites
    elevation_rows = np.stack(
        [elevations_deg(constellation, point, float(t)) for t in times]
    )
    above = elevation_rows >= min_elevation_deg

    windows: list[PassWindow] = []
    for sat in range(len(constellation)):
        column = above[:, sat]
        if not column.any():
            continue
        # Find rising/falling edges of the boolean visibility column.
        padded = np.concatenate(([False], column, [False]))
        edges = np.flatnonzero(padded[1:] != padded[:-1])
        for rise, fall in zip(edges[::2], edges[1::2]):
            segment = elevation_rows[rise:fall, sat]
            windows.append(
                PassWindow(
                    satellite=sat,
                    start_s=float(times[rise]),
                    end_s=float(times[fall - 1]),
                    max_elevation_deg=float(segment.max()),
                )
            )
    windows.sort(key=lambda w: (w.start_s, w.satellite))
    return windows


def next_pass(
    constellation: Constellation,
    point: GeoPoint,
    satellite: int,
    after_s: float,
    horizon_s: float = 7200.0,
    step_s: float = 10.0,
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
) -> PassWindow:
    """The first pass of ``satellite`` over ``point`` after ``after_s``.

    Raises :class:`VisibilityError` if none occurs within ``horizon_s``.
    """
    for window in predict_passes(
        constellation, point, after_s, horizon_s, step_s, min_elevation_deg
    ):
        if window.satellite == satellite and window.end_s > after_s:
            return window
    raise VisibilityError(
        f"satellite {satellite} makes no pass over "
        f"({point.lat_deg:.2f}, {point.lon_deg:.2f}) within {horizon_s:.0f}s"
    )
