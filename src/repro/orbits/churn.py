"""Access-satellite churn: how often a terminal switches satellites.

Starlink terminals are re-scheduled to (possibly) different satellites every
15 seconds; even without re-scheduling, the serving satellite leaves the
sky within minutes. Handover churn matters for SpaceCDN because every
switch invalidates the "content is on the satellite overhead" assumption —
the striping and system layers absorb it via ISLs and prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import MIN_ELEVATION_USER_DEG
from repro.errors import ConfigurationError, VisibilityError
from repro.geo.coordinates import GeoPoint
from repro.orbits.visibility import nearest_visible_satellite
from repro.orbits.walker import Constellation

STARLINK_RESCHEDULE_INTERVAL_S = 15.0
"""Starlink's scheduler reassigns terminal-satellite pairs every 15 s."""


@dataclass(frozen=True)
class ChurnReport:
    """Access-satellite switching statistics for one terminal."""

    observations: int
    switches: int
    distinct_satellites: int
    mean_dwell_s: float
    """Average continuous time on one satellite."""

    @property
    def switch_rate_per_minute(self) -> float:
        if self.mean_dwell_s <= 0:
            return float("inf")
        return 60.0 / self.mean_dwell_s


def access_churn(
    constellation: Constellation,
    terminal: GeoPoint,
    duration_s: float,
    interval_s: float = STARLINK_RESCHEDULE_INTERVAL_S,
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
) -> ChurnReport:
    """Track the nearest-satellite assignment over time and count switches.

    Uses the nearest-visible policy at every scheduling interval; real
    scheduling also balances load, which would only *increase* churn, so
    this is a lower bound.
    """
    if duration_s <= 0 or interval_s <= 0:
        raise ConfigurationError("duration and interval must be positive")

    times = np.arange(0.0, duration_s, interval_s)
    assignments: list[int] = []
    for t in times:
        try:
            assignments.append(
                nearest_visible_satellite(
                    constellation, terminal, float(t), min_elevation_deg
                ).index
            )
        except VisibilityError:
            assignments.append(-1)  # outage sample

    if all(a == -1 for a in assignments):
        raise VisibilityError("terminal is never covered during the window")

    switches = sum(
        1 for prev, cur in zip(assignments, assignments[1:]) if prev != cur
    )
    dwells: list[float] = []
    run = 1
    for prev, cur in zip(assignments, assignments[1:]):
        if cur == prev:
            run += 1
        else:
            dwells.append(run * interval_s)
            run = 1
    dwells.append(run * interval_s)

    return ChurnReport(
        observations=len(assignments),
        switches=switches,
        distinct_satellites=len({a for a in assignments if a >= 0}),
        mean_dwell_s=float(np.mean(dwells)),
    )
