"""Walker-delta constellation construction and propagation.

The :class:`Constellation` is the workhorse of the space segment: it holds
per-satellite right ascensions and phase angles as numpy arrays and can
produce every satellite's position at any instant in a single vectorised
call. Circular two-body propagation is exact for this geometry — all
satellites share one altitude, so J2 drift moves planes together and does
not change the constellation-relative geometry the experiments depend on.

Frames: satellites are propagated in an inertial frame and rotated into the
Earth-centred Earth-fixed (ECEF) frame, so positions can be compared
directly with ground locations from :mod:`repro.geo`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.constants import EARTH_RADIUS_KM, EARTH_ROTATION_RAD_S
from repro.errors import ConfigurationError
from repro.geo.coordinates import GeoPoint
from repro.orbits.elements import SatelliteId, ShellConfig


@dataclass
class Constellation:
    """A propagatable Walker-delta shell.

    Attributes:
        config: shell geometry.
        raan_rad: per-satellite right ascension of ascending node (radians).
        phase_rad: per-satellite argument of latitude at epoch (radians).
    """

    config: ShellConfig
    raan_rad: np.ndarray
    phase_rad: np.ndarray
    _mean_motion_rad_s: float = field(init=False)

    def __post_init__(self) -> None:
        n = self.config.total_satellites
        if self.raan_rad.shape != (n,) or self.phase_rad.shape != (n,):
            raise ConfigurationError(
                f"raan/phase arrays must have shape ({n},), got "
                f"{self.raan_rad.shape} and {self.phase_rad.shape}"
            )
        self._mean_motion_rad_s = 2.0 * math.pi / self.config.period_s

    def __len__(self) -> int:
        return self.config.total_satellites

    @property
    def orbit_radius_km(self) -> float:
        return EARTH_RADIUS_KM + self.config.altitude_km

    def satellite_id(self, index: int) -> SatelliteId:
        """Plane/slot identity for a flat index."""
        return SatelliteId.from_index(index, self.config)

    def positions_ecef(self, t_s: float) -> np.ndarray:
        """ECEF positions of every satellite at time ``t_s`` (shape (N, 3), km)."""
        inc = math.radians(self.config.inclination_deg)
        u = self.phase_rad + self._mean_motion_rad_s * t_s  # argument of latitude
        cos_u, sin_u = np.cos(u), np.sin(u)
        cos_raan, sin_raan = np.cos(self.raan_rad), np.sin(self.raan_rad)
        cos_i, sin_i = math.cos(inc), math.sin(inc)

        r = self.orbit_radius_km
        x_eci = r * (cos_raan * cos_u - sin_raan * sin_u * cos_i)
        y_eci = r * (sin_raan * cos_u + cos_raan * sin_u * cos_i)
        z_eci = r * (sin_u * sin_i)

        # Rotate the inertial frame into the Earth-fixed frame.
        theta = EARTH_ROTATION_RAD_S * t_s
        cos_t, sin_t = math.cos(theta), math.sin(theta)
        x = x_eci * cos_t + y_eci * sin_t
        y = -x_eci * sin_t + y_eci * cos_t
        return np.column_stack((x, y, z_eci))

    def position_geodetic(self, index: int, t_s: float) -> GeoPoint:
        """Geodetic position (lat/lon/alt) of one satellite."""
        pos = self.positions_ecef(t_s)[index]
        return _ecef_to_geopoint(pos)

    def subsatellite_points(self, t_s: float) -> np.ndarray:
        """Sub-satellite (lat_deg, lon_deg) for every satellite, shape (N, 2)."""
        pos = self.positions_ecef(t_s)
        hyp = np.hypot(pos[:, 0], pos[:, 1])
        lat = np.degrees(np.arctan2(pos[:, 2], hyp))
        lon = np.degrees(np.arctan2(pos[:, 1], pos[:, 0]))
        return np.column_stack((lat, lon))

    def intra_plane_neighbors(self, index: int) -> tuple[int, int]:
        """Indices of the two same-plane neighbours (ahead and behind)."""
        sat = self.satellite_id(index)
        per = self.config.sats_per_plane
        ahead = sat.plane * per + (sat.slot + 1) % per
        behind = sat.plane * per + (sat.slot - 1) % per
        return ahead, behind

    def cross_plane_neighbors(self, index: int) -> tuple[int, int]:
        """Indices of the nearest-slot satellites in the adjacent planes.

        Uses the same slot offset the +Grid ISL wiring uses, so these are
        the satellites this one actually holds cross-plane links with.
        """
        from repro.topology.isl import nearest_cross_plane_offset

        sat = self.satellite_id(index)
        per = self.config.sats_per_plane
        planes = self.config.num_planes
        offset = nearest_cross_plane_offset(self.config)
        east = ((sat.plane + 1) % planes) * per + (sat.slot + offset) % per
        west = ((sat.plane - 1) % planes) * per + (sat.slot - offset) % per
        return east, west


def _ecef_to_geopoint(pos: np.ndarray) -> GeoPoint:
    """Convert one ECEF (x, y, z) km triple to a :class:`GeoPoint`."""
    x, y, z = float(pos[0]), float(pos[1]), float(pos[2])
    norm = math.sqrt(x * x + y * y + z * z)
    lat = math.degrees(math.asin(z / norm))
    lon = math.degrees(math.atan2(y, x))
    return GeoPoint(lat, lon, norm - EARTH_RADIUS_KM)


def build_walker_delta(config: ShellConfig) -> Constellation:
    """Construct a Walker-delta constellation from a shell configuration.

    Plane ``p`` sits at RAAN ``p * 360/P``; satellite ``s`` of plane ``p``
    starts at argument of latitude ``s * 360/S + p * F * 360/T`` where ``F``
    is the Walker phasing factor and ``T`` the total satellite count.
    """
    total = config.total_satellites
    indices = np.arange(total)
    planes = indices // config.sats_per_plane
    slots = indices % config.sats_per_plane

    raan = np.radians(planes * config.raan_spacing_deg)
    phase = np.radians(
        slots * config.in_plane_spacing_deg + planes * config.inter_plane_phase_deg
    )
    return Constellation(config=config, raan_rad=raan, phase_rad=phase)
