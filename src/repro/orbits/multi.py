"""Multi-shell constellations: several Walker shells operated as one fleet.

Real Starlink flies Shells 1-4 simultaneously (plus VLEO in Gen2 plans); a
SpaceCDN would place content across the whole fleet. A
:class:`MultiShellConstellation` owns one :class:`Constellation` per shell
and exposes fleet-wide indexing: satellite ``i`` belongs to the shell whose
index block contains ``i``.

ISLs do not cross shells (different altitudes/planes make inter-shell
optical links impractical); fleet-wide reachability goes through the ground
or is simply "whichever shell's satellite is overhead".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import MIN_ELEVATION_USER_DEG
from repro.errors import ConfigurationError, VisibilityError
from repro.geo.coordinates import GeoPoint
from repro.orbits.elements import ShellConfig
from repro.orbits.visibility import VisibleSatellite, visible_satellites
from repro.orbits.walker import Constellation, build_walker_delta


@dataclass(frozen=True)
class FleetSatellite:
    """A fleet-wide satellite handle: which shell, and the index within it."""

    shell_index: int
    shell_name: str
    local_index: int
    fleet_index: int


@dataclass
class MultiShellConstellation:
    """Several shells addressed through one fleet-wide index space."""

    shells: tuple[ShellConfig, ...]
    constellations: tuple[Constellation, ...] = field(init=False)
    _offsets: tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        if not self.shells:
            raise ConfigurationError("need at least one shell")
        names = [shell.name for shell in self.shells]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate shell names: {names}")
        self.constellations = tuple(build_walker_delta(s) for s in self.shells)
        offsets = []
        total = 0
        for shell in self.shells:
            offsets.append(total)
            total += shell.total_satellites
        self._offsets = tuple(offsets)

    def __len__(self) -> int:
        return sum(shell.total_satellites for shell in self.shells)

    def resolve(self, fleet_index: int) -> FleetSatellite:
        """Map a fleet-wide index to its shell and local index."""
        if not 0 <= fleet_index < len(self):
            raise ConfigurationError(
                f"fleet index {fleet_index} outside [0, {len(self)})"
            )
        for shell_index in reversed(range(len(self.shells))):
            offset = self._offsets[shell_index]
            if fleet_index >= offset:
                return FleetSatellite(
                    shell_index=shell_index,
                    shell_name=self.shells[shell_index].name,
                    local_index=fleet_index - offset,
                    fleet_index=fleet_index,
                )
        raise AssertionError("unreachable")  # offsets always cover index 0

    def fleet_index(self, shell_index: int, local_index: int) -> int:
        """Map (shell, local index) to the fleet-wide index."""
        if not 0 <= shell_index < len(self.shells):
            raise ConfigurationError(f"shell index {shell_index} out of range")
        shell = self.shells[shell_index]
        if not 0 <= local_index < shell.total_satellites:
            raise ConfigurationError(
                f"local index {local_index} outside shell {shell.name!r}"
            )
        return self._offsets[shell_index] + local_index

    def positions_ecef(self, t_s: float) -> np.ndarray:
        """ECEF positions of the whole fleet, shape (N, 3)."""
        return np.vstack(
            [constellation.positions_ecef(t_s) for constellation in self.constellations]
        )

    def visible_satellites(
        self,
        point: GeoPoint,
        t_s: float,
        min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
    ) -> list[tuple[FleetSatellite, VisibleSatellite]]:
        """Fleet-wide visibility, sorted by ascending slant range."""
        hits: list[tuple[FleetSatellite, VisibleSatellite]] = []
        for shell_index, constellation in enumerate(self.constellations):
            for visible in visible_satellites(
                constellation, point, t_s, min_elevation_deg
            ):
                fleet_sat = FleetSatellite(
                    shell_index=shell_index,
                    shell_name=self.shells[shell_index].name,
                    local_index=visible.index,
                    fleet_index=self.fleet_index(shell_index, visible.index),
                )
                hits.append((fleet_sat, visible))
        hits.sort(key=lambda pair: pair[1].slant_range_km)
        return hits

    def nearest_visible(
        self,
        point: GeoPoint,
        t_s: float,
        min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
    ) -> tuple[FleetSatellite, VisibleSatellite]:
        """The closest usable satellite across every shell."""
        hits = self.visible_satellites(point, t_s, min_elevation_deg)
        if not hits:
            raise VisibilityError(
                f"no satellite of any shell visible from "
                f"({point.lat_deg:.2f}, {point.lon_deg:.2f})"
            )
        return hits[0]

    def coverage_by_shell(
        self,
        point: GeoPoint,
        t_s: float,
        min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
    ) -> dict[str, int]:
        """How many satellites of each shell currently serve a point."""
        counts = {shell.name: 0 for shell in self.shells}
        for fleet_sat, _ in self.visible_satellites(point, t_s, min_elevation_deg):
            counts[fleet_sat.shell_name] += 1
        return counts
