"""Constellation shell configuration and satellite identity.

A *shell* is one layer of a mega-constellation: a Walker-delta pattern of
circular orbits at a common altitude and inclination. The paper simulates
Starlink Shell 1 — 72 planes of 22 satellites at 550 km / 53 deg — which is
provided as a preset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import (
    STARLINK_SHELL1_ALTITUDE_KM,
    STARLINK_SHELL1_INCLINATION_DEG,
    STARLINK_SHELL1_NUM_PLANES,
    STARLINK_SHELL1_PHASE_OFFSET,
    STARLINK_SHELL1_SATS_PER_PLANE,
    orbital_period_s,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ShellConfig:
    """Geometry of one Walker-delta constellation shell."""

    altitude_km: float
    inclination_deg: float
    num_planes: int
    sats_per_plane: int
    phase_offset: int = 0
    name: str = "shell"
    isl_capable: bool = True
    """Whether the shell's satellites carry inter-satellite links.
    First-generation OneWeb famously does not — every path is a bent pipe."""

    def __post_init__(self) -> None:
        if self.altitude_km <= 0:
            raise ConfigurationError(f"altitude must be positive, got {self.altitude_km}")
        if not 0.0 < self.inclination_deg <= 180.0:
            raise ConfigurationError(
                f"inclination must be in (0, 180], got {self.inclination_deg}"
            )
        if self.num_planes < 1 or self.sats_per_plane < 1:
            raise ConfigurationError("need at least one plane and one satellite per plane")
        if not 0 <= self.phase_offset < self.total_satellites:
            raise ConfigurationError(
                f"phase offset must be in [0, {self.total_satellites}), got {self.phase_offset}"
            )

    @property
    def total_satellites(self) -> int:
        return self.num_planes * self.sats_per_plane

    @property
    def period_s(self) -> float:
        """Orbital period of every satellite in the shell."""
        return orbital_period_s(self.altitude_km)

    @property
    def raan_spacing_deg(self) -> float:
        """Right-ascension spacing between adjacent planes."""
        return 360.0 / self.num_planes

    @property
    def in_plane_spacing_deg(self) -> float:
        """Angular spacing between adjacent satellites within a plane."""
        return 360.0 / self.sats_per_plane

    @property
    def inter_plane_phase_deg(self) -> float:
        """Phase shift applied between adjacent planes (Walker-delta F term)."""
        return self.phase_offset * 360.0 / self.total_satellites

    def in_plane_neighbor_distance_km(self) -> float:
        """Chord distance between adjacent satellites in the same plane."""
        from repro.constants import EARTH_RADIUS_KM

        radius = EARTH_RADIUS_KM + self.altitude_km
        return 2.0 * radius * math.sin(math.radians(self.in_plane_spacing_deg) / 2.0)


@dataclass(frozen=True)
class SatelliteId:
    """Identity of one satellite: its plane and slot within the plane."""

    plane: int
    slot: int
    shell_name: str = "shell"

    def index(self, config: ShellConfig) -> int:
        """Flat index of this satellite in constellation arrays."""
        if not (0 <= self.plane < config.num_planes and 0 <= self.slot < config.sats_per_plane):
            raise ConfigurationError(f"{self} outside shell {config.name}")
        return self.plane * config.sats_per_plane + self.slot

    @staticmethod
    def from_index(index: int, config: ShellConfig) -> "SatelliteId":
        """Inverse of :meth:`index`."""
        if not 0 <= index < config.total_satellites:
            raise ConfigurationError(
                f"satellite index {index} outside [0, {config.total_satellites})"
            )
        return SatelliteId(
            plane=index // config.sats_per_plane,
            slot=index % config.sats_per_plane,
            shell_name=config.name,
        )


def starlink_shell1() -> ShellConfig:
    """Starlink Shell 1 as simulated in the paper (72 x 22 at 550 km, 53 deg)."""
    return ShellConfig(
        altitude_km=STARLINK_SHELL1_ALTITUDE_KM,
        inclination_deg=STARLINK_SHELL1_INCLINATION_DEG,
        num_planes=STARLINK_SHELL1_NUM_PLANES,
        sats_per_plane=STARLINK_SHELL1_SATS_PER_PLANE,
        phase_offset=STARLINK_SHELL1_PHASE_OFFSET,
        name="starlink-shell1",
    )


def starlink_shell2() -> ShellConfig:
    """Starlink Shell 2 (72 x 22 at 540 km, 53.2 deg) per the FCC filings."""
    return ShellConfig(
        altitude_km=540.0,
        inclination_deg=53.2,
        num_planes=72,
        sats_per_plane=22,
        phase_offset=39,
        name="starlink-shell2",
    )


def starlink_shell3() -> ShellConfig:
    """Starlink Shell 3 (36 x 20 at 570 km, 70 deg): higher-latitude coverage."""
    return ShellConfig(
        altitude_km=570.0,
        inclination_deg=70.0,
        num_planes=36,
        sats_per_plane=20,
        phase_offset=11,
        name="starlink-shell3",
    )


def starlink_vleo() -> ShellConfig:
    """A VLEO shell (~345 km) from the Gen2 plans (paper §2: "Very-Low Earth
    Orbits (~300 km)"). Lower altitude = shorter access links and smaller
    footprints — a useful ablation axis for SpaceCDN latency."""
    return ShellConfig(
        altitude_km=345.0,
        inclination_deg=53.0,
        num_planes=48,
        sats_per_plane=110 // 2,  # 48 x 55: a Gen2-scale dense shell
        phase_offset=17,
        name="starlink-vleo",
    )


def oneweb_phase1() -> ShellConfig:
    """OneWeb's phase-1 constellation (12 x 49 at 1200 km, 87.9 deg).

    No inter-satellite links: every connection is a bent pipe through a
    gateway, so a OneWeb SpaceCDN could only serve from the overhead
    satellite — a useful baseline for how much the ISLs buy.
    """
    return ShellConfig(
        altitude_km=1200.0,
        inclination_deg=87.9,
        num_planes=12,
        sats_per_plane=49,
        phase_offset=0,
        name="oneweb-phase1",
        isl_capable=False,
    )


def all_shell_presets() -> tuple[ShellConfig, ...]:
    """Every built-in shell preset."""
    return (
        starlink_shell1(),
        starlink_shell2(),
        starlink_shell3(),
        starlink_vleo(),
        oneweb_phase1(),
    )
