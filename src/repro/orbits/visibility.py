"""Satellite visibility from ground locations.

A ground terminal can use a satellite only when it is above a minimum
elevation angle (25 deg for Starlink user terminals, ~10 deg for gateway
dishes). These routines compute, vectorised over the whole constellation,
which satellites are usable from a point and at what slant range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import MIN_ELEVATION_USER_DEG
from repro.errors import VisibilityError
from repro.geo.coordinates import GeoPoint
from repro.orbits.walker import Constellation


@dataclass(frozen=True)
class VisibleSatellite:
    """One satellite visible from a ground point at a given instant."""

    index: int
    elevation_deg: float
    slant_range_km: float


def _observer_arrays(point: GeoPoint) -> tuple[np.ndarray, float]:
    ecef = point.to_ecef()
    obs = np.array([ecef.x, ecef.y, ecef.z])
    return obs, float(np.linalg.norm(obs))


def elevations_deg(constellation: Constellation, point: GeoPoint, t_s: float) -> np.ndarray:
    """Elevation of every satellite above ``point``'s horizon (degrees)."""
    obs, obs_norm = _observer_arrays(point)
    sat = constellation.positions_ecef(t_s)
    los = sat - obs
    ranges = np.linalg.norm(los, axis=1)
    cos_zenith = (los @ obs) / (ranges * obs_norm)
    np.clip(cos_zenith, -1.0, 1.0, out=cos_zenith)
    return 90.0 - np.degrees(np.arccos(cos_zenith))


def slant_ranges_km(constellation: Constellation, point: GeoPoint, t_s: float) -> np.ndarray:
    """Straight-line distance from ``point`` to every satellite (km)."""
    obs, _ = _observer_arrays(point)
    sat = constellation.positions_ecef(t_s)
    return np.linalg.norm(sat - obs, axis=1)


def visible_satellites(
    constellation: Constellation,
    point: GeoPoint,
    t_s: float,
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
) -> list[VisibleSatellite]:
    """All satellites usable from ``point``, sorted by ascending slant range."""
    obs, obs_norm = _observer_arrays(point)
    sat = constellation.positions_ecef(t_s)
    los = sat - obs
    ranges = np.linalg.norm(los, axis=1)
    cos_zenith = (los @ obs) / (ranges * obs_norm)
    np.clip(cos_zenith, -1.0, 1.0, out=cos_zenith)
    elevations = 90.0 - np.degrees(np.arccos(cos_zenith))

    usable = np.flatnonzero(elevations >= min_elevation_deg)
    order = usable[np.argsort(ranges[usable])]
    return [
        VisibleSatellite(
            index=int(i),
            elevation_deg=float(elevations[i]),
            slant_range_km=float(ranges[i]),
        )
        for i in order
    ]


@dataclass(frozen=True)
class VisibilityBatch:
    """Visibility of the whole constellation from many ground points at once.

    One ``(P, N)`` elevation/slant-range pass shared by a request cohort:
    satellite positions are computed once per epoch instead of once per
    request, and each point's sorted visible list is derived from its row
    with exactly the per-point operations :func:`visible_satellites` uses —
    ``order[p]`` reproduces that function's satellite ordering (ascending
    slant range over the usable set) element for element.
    """

    elevations_deg: np.ndarray
    """``(P, N)`` elevation of every satellite above every point's horizon."""
    slant_ranges_km: np.ndarray
    """``(P, N)`` straight-line distance from every point to every satellite."""
    order: list[np.ndarray]
    """Per-point usable satellite indices, ascending slant range. Empty
    array when the point sees nothing (callers decide whether that is an
    error)."""

    @property
    def num_points(self) -> int:
        return len(self.order)

    def access(self, point_index: int) -> tuple[int, float]:
        """(satellite, slant km) of the access pick for one point.

        Raises :class:`VisibilityError` when the point sees no satellite.
        """
        order = self.order[point_index]
        if order.size == 0:
            raise VisibilityError(
                f"no satellite visible from point {point_index} of this batch"
            )
        best = int(order[0])
        return best, float(self.slant_ranges_km[point_index, best])

    def visible_list(self, point_index: int) -> list[VisibleSatellite]:
        """The point's view as :func:`visible_satellites` would return it."""
        row_elev = self.elevations_deg[point_index]
        row_range = self.slant_ranges_km[point_index]
        return [
            VisibleSatellite(
                index=int(i),
                elevation_deg=float(row_elev[i]),
                slant_range_km=float(row_range[i]),
            )
            for i in self.order[point_index]
        ]


def visible_satellites_batch(
    constellation: Constellation,
    points: list[GeoPoint],
    t_s: float,
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
) -> VisibilityBatch:
    """Vectorised :func:`visible_satellites` over many ground points.

    Builds the ``(P, N)`` elevation and slant-range matrices over *shared*
    satellite positions — the O(N) trig of ``positions_ecef`` runs once per
    epoch instead of once per request. Each point's row is computed with
    the exact per-point expression :func:`visible_satellites` evaluates
    (same dot product, same clip, same argsort), so the derived ordering is
    bit-for-bit the scalar one — the batched serve path leans on that
    agreement for element-wise equivalence with scalar serving. A
    broadcast ``einsum`` over the ``(P, N, 3)`` line-of-sight tensor would
    be marginally faster but drifts in the last float bit, which is enough
    to flip near-threshold visibility and near-tie orderings.
    """
    num_sats = len(constellation)
    if not points:
        return VisibilityBatch(
            elevations_deg=np.zeros((0, num_sats)),
            slant_ranges_km=np.zeros((0, num_sats)),
            order=[],
        )
    sat = constellation.positions_ecef(t_s)
    elevations = np.empty((len(points), num_sats))
    ranges = np.empty((len(points), num_sats))
    order = []
    for p, point in enumerate(points):
        obs, obs_norm = _observer_arrays(point)
        los = sat - obs
        row_ranges = np.linalg.norm(los, axis=1)
        cos_zenith = (los @ obs) / (row_ranges * obs_norm)
        np.clip(cos_zenith, -1.0, 1.0, out=cos_zenith)
        row_elev = 90.0 - np.degrees(np.arccos(cos_zenith))
        elevations[p] = row_elev
        ranges[p] = row_ranges
        usable = np.flatnonzero(row_elev >= min_elevation_deg)
        order.append(usable[np.argsort(row_ranges[usable])])
    return VisibilityBatch(
        elevations_deg=elevations, slant_ranges_km=ranges, order=order
    )


def nearest_visible_satellites(
    constellation: Constellation,
    points: list[GeoPoint],
    t_s: float,
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
) -> tuple[np.ndarray, np.ndarray]:
    """Access satellite for every ground point, one vectorised pass.

    Returns ``(indices, slant_ranges_km)`` arrays aligned with ``points`` —
    each entry the lowest-slant-range satellite above the elevation mask,
    exactly as :func:`nearest_visible_satellite` would pick per point.
    Raises :class:`VisibilityError` if any point sees no satellite.
    """
    if not points:
        raise VisibilityError("no ground points given")
    observers = np.array(
        [(e.x, e.y, e.z) for e in (p.to_ecef() for p in points)]
    )
    obs_norms = np.linalg.norm(observers, axis=1)
    sat = constellation.positions_ecef(t_s)
    los = sat[None, :, :] - observers[:, None, :]  # (P, N, 3)
    ranges = np.linalg.norm(los, axis=2)
    cos_zenith = np.einsum("pnc,pc->pn", los, observers) / (
        ranges * obs_norms[:, None]
    )
    np.clip(cos_zenith, -1.0, 1.0, out=cos_zenith)
    elevations = 90.0 - np.degrees(np.arccos(cos_zenith))

    masked = np.where(elevations >= min_elevation_deg, ranges, np.inf)
    nearest = masked.argmin(axis=1)
    best = masked[np.arange(len(points)), nearest]
    blind = ~np.isfinite(best)
    if blind.any():
        p = points[int(np.flatnonzero(blind)[0])]
        raise VisibilityError(
            f"no satellite above {min_elevation_deg} deg elevation from "
            f"({p.lat_deg:.2f}, {p.lon_deg:.2f}) at t={t_s:.0f}s"
        )
    return nearest.astype(np.int64), best


def nearest_visible_satellite(
    constellation: Constellation,
    point: GeoPoint,
    t_s: float,
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
) -> VisibleSatellite:
    """The lowest-slant-range usable satellite, or raise :class:`VisibilityError`."""
    candidates = visible_satellites(constellation, point, t_s, min_elevation_deg)
    if not candidates:
        raise VisibilityError(
            f"no satellite above {min_elevation_deg} deg elevation from "
            f"({point.lat_deg:.2f}, {point.lon_deg:.2f}) at t={t_s:.0f}s"
        )
    return candidates[0]


def coverage_fraction(
    constellation: Constellation,
    point: GeoPoint,
    duration_s: float,
    step_s: float = 30.0,
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
) -> float:
    """Fraction of sampled instants at which at least one satellite is usable."""
    if duration_s <= 0 or step_s <= 0:
        raise VisibilityError("duration and step must be positive")
    times = np.arange(0.0, duration_s, step_s)
    covered = sum(
        1 for t in times if len(visible_satellites(constellation, point, float(t), min_elevation_deg)) > 0
    )
    return covered / len(times)


def max_slant_range_km(altitude_km: float, min_elevation_deg: float) -> float:
    """Maximum slant range to a satellite at ``altitude_km`` at the elevation limit.

    Law of sines on the Earth-centre / observer / satellite triangle.
    """
    from repro.constants import EARTH_RADIUS_KM

    re = EARTH_RADIUS_KM
    rs = re + altitude_km
    elev = math.radians(min_elevation_deg)
    # Angle at the satellite vertex.
    sat_angle = math.asin(re * math.cos(elev) / rs)
    earth_angle = math.pi / 2.0 - elev - sat_angle
    return math.sqrt(re * re + rs * rs - 2.0 * re * rs * math.cos(earth_angle))
