"""Satellite visibility from ground locations.

A ground terminal can use a satellite only when it is above a minimum
elevation angle (25 deg for Starlink user terminals, ~10 deg for gateway
dishes). These routines compute, vectorised over the whole constellation,
which satellites are usable from a point and at what slant range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import MIN_ELEVATION_USER_DEG
from repro.errors import VisibilityError
from repro.geo.coordinates import GeoPoint
from repro.orbits.walker import Constellation


@dataclass(frozen=True)
class VisibleSatellite:
    """One satellite visible from a ground point at a given instant."""

    index: int
    elevation_deg: float
    slant_range_km: float


def _observer_arrays(point: GeoPoint) -> tuple[np.ndarray, float]:
    ecef = point.to_ecef()
    obs = np.array([ecef.x, ecef.y, ecef.z])
    return obs, float(np.linalg.norm(obs))


def elevations_deg(constellation: Constellation, point: GeoPoint, t_s: float) -> np.ndarray:
    """Elevation of every satellite above ``point``'s horizon (degrees)."""
    obs, obs_norm = _observer_arrays(point)
    sat = constellation.positions_ecef(t_s)
    los = sat - obs
    ranges = np.linalg.norm(los, axis=1)
    cos_zenith = (los @ obs) / (ranges * obs_norm)
    np.clip(cos_zenith, -1.0, 1.0, out=cos_zenith)
    return 90.0 - np.degrees(np.arccos(cos_zenith))


def slant_ranges_km(constellation: Constellation, point: GeoPoint, t_s: float) -> np.ndarray:
    """Straight-line distance from ``point`` to every satellite (km)."""
    obs, _ = _observer_arrays(point)
    sat = constellation.positions_ecef(t_s)
    return np.linalg.norm(sat - obs, axis=1)


def visible_satellites(
    constellation: Constellation,
    point: GeoPoint,
    t_s: float,
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
) -> list[VisibleSatellite]:
    """All satellites usable from ``point``, sorted by ascending slant range."""
    obs, obs_norm = _observer_arrays(point)
    sat = constellation.positions_ecef(t_s)
    los = sat - obs
    ranges = np.linalg.norm(los, axis=1)
    cos_zenith = (los @ obs) / (ranges * obs_norm)
    np.clip(cos_zenith, -1.0, 1.0, out=cos_zenith)
    elevations = 90.0 - np.degrees(np.arccos(cos_zenith))

    usable = np.flatnonzero(elevations >= min_elevation_deg)
    order = usable[np.argsort(ranges[usable])]
    return [
        VisibleSatellite(
            index=int(i),
            elevation_deg=float(elevations[i]),
            slant_range_km=float(ranges[i]),
        )
        for i in order
    ]


def nearest_visible_satellites(
    constellation: Constellation,
    points: list[GeoPoint],
    t_s: float,
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
) -> tuple[np.ndarray, np.ndarray]:
    """Access satellite for every ground point, one vectorised pass.

    Returns ``(indices, slant_ranges_km)`` arrays aligned with ``points`` —
    each entry the lowest-slant-range satellite above the elevation mask,
    exactly as :func:`nearest_visible_satellite` would pick per point.
    Raises :class:`VisibilityError` if any point sees no satellite.
    """
    if not points:
        raise VisibilityError("no ground points given")
    observers = np.array(
        [(e.x, e.y, e.z) for e in (p.to_ecef() for p in points)]
    )
    obs_norms = np.linalg.norm(observers, axis=1)
    sat = constellation.positions_ecef(t_s)
    los = sat[None, :, :] - observers[:, None, :]  # (P, N, 3)
    ranges = np.linalg.norm(los, axis=2)
    cos_zenith = np.einsum("pnc,pc->pn", los, observers) / (
        ranges * obs_norms[:, None]
    )
    np.clip(cos_zenith, -1.0, 1.0, out=cos_zenith)
    elevations = 90.0 - np.degrees(np.arccos(cos_zenith))

    masked = np.where(elevations >= min_elevation_deg, ranges, np.inf)
    nearest = masked.argmin(axis=1)
    best = masked[np.arange(len(points)), nearest]
    blind = ~np.isfinite(best)
    if blind.any():
        p = points[int(np.flatnonzero(blind)[0])]
        raise VisibilityError(
            f"no satellite above {min_elevation_deg} deg elevation from "
            f"({p.lat_deg:.2f}, {p.lon_deg:.2f}) at t={t_s:.0f}s"
        )
    return nearest.astype(np.int64), best


def nearest_visible_satellite(
    constellation: Constellation,
    point: GeoPoint,
    t_s: float,
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
) -> VisibleSatellite:
    """The lowest-slant-range usable satellite, or raise :class:`VisibilityError`."""
    candidates = visible_satellites(constellation, point, t_s, min_elevation_deg)
    if not candidates:
        raise VisibilityError(
            f"no satellite above {min_elevation_deg} deg elevation from "
            f"({point.lat_deg:.2f}, {point.lon_deg:.2f}) at t={t_s:.0f}s"
        )
    return candidates[0]


def coverage_fraction(
    constellation: Constellation,
    point: GeoPoint,
    duration_s: float,
    step_s: float = 30.0,
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
) -> float:
    """Fraction of sampled instants at which at least one satellite is usable."""
    if duration_s <= 0 or step_s <= 0:
        raise VisibilityError("duration and step must be positive")
    times = np.arange(0.0, duration_s, step_s)
    covered = sum(
        1 for t in times if len(visible_satellites(constellation, point, float(t), min_elevation_deg)) > 0
    )
    return covered / len(times)


def max_slant_range_km(altitude_km: float, min_elevation_deg: float) -> float:
    """Maximum slant range to a satellite at ``altitude_km`` at the elevation limit.

    Law of sines on the Earth-centre / observer / satellite triangle.
    """
    from repro.constants import EARTH_RADIUS_KM

    re = EARTH_RADIUS_KM
    rs = re + altitude_km
    elev = math.radians(min_elevation_deg)
    # Angle at the satellite vertex.
    sat_angle = math.asin(re * math.cos(elev) / rs)
    earth_angle = math.pi / 2.0 - elev - sat_angle
    return math.sqrt(re * re + rs * rs - 2.0 * re * rs * math.cos(earth_angle))
