"""Timestamped request streams.

A :class:`RequestGenerator` produces Poisson-arrival request streams per
city, suitable for driving cache simulations and the SpaceCDN lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.geo.datasets import City
from repro.workloads.regional import RegionalRequestMixer


@dataclass(frozen=True)
class Request:
    """One content request from one city at one simulated instant."""

    t_s: float
    city: City
    object_id: str


@dataclass
class RequestGenerator:
    """Poisson request streams over a set of cities.

    Per-city arrival rates are proportional to population; object choice
    delegates to the regional mixer.
    """

    cities: tuple[City, ...]
    mixer: RegionalRequestMixer
    requests_per_second_total: float = 10.0
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def __post_init__(self) -> None:
        if not self.cities:
            raise ConfigurationError("need at least one city")
        if self.requests_per_second_total <= 0:
            raise ConfigurationError("total request rate must be positive")

    def _city_weights(self) -> np.ndarray:
        weights = np.array([c.population_m for c in self.cities], dtype=float)
        total = weights.sum()
        if total <= 0:
            raise ConfigurationError("city population weights sum to zero")
        return weights / total

    def generate(self, duration_s: float) -> Iterator[Request]:
        """Yield requests over ``[0, duration_s)`` in time order."""
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        weights = self._city_weights()
        t = 0.0
        while True:
            t += float(self.rng.exponential(1.0 / self.requests_per_second_total))
            if t >= duration_s:
                return
            city = self.cities[int(self.rng.choice(len(self.cities), p=weights))]
            yield Request(
                t_s=t, city=city, object_id=self.mixer.sample_for_city(city)
            )

    def generate_list(self, duration_s: float) -> list[Request]:
        """Materialised form of :meth:`generate`."""
        return list(self.generate(duration_s))
