"""Regional request mixing: which region's content a city's users ask for.

Content interest is strongly local (the paper's Boca Juniors example): a
client mostly requests its own region's catalog, with a small spill into
global and foreign content.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.geo.datasets import City
from repro.spacecdn.bubbles import RegionalPopularity


def region_of_city(city: City) -> str:
    """The gazetteer region a city's content interest is affine to."""
    return city.country.region


@dataclass
class RegionalRequestMixer:
    """Draws object ids for clients in specific cities.

    Thin composition over :class:`RegionalPopularity`: the city fixes the
    home region, the popularity model handles rank skew and cross-region
    spill.
    """

    popularity: RegionalPopularity
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def sample_for_city(self, city: City) -> str:
        """One requested object id for a client in ``city``."""
        region = region_of_city(city)
        if region not in self.popularity.regions():
            # Fall back to any region with content rather than failing the
            # stream: the catalog may not model every gazetteer region.
            regions = self.popularity.regions()
            if not regions:
                raise ConfigurationError("catalog has no regional content")
            region = regions[int(self.rng.integers(len(regions)))]
        return self.popularity.sample(region)

    def stream_for_city(self, city: City, count: int) -> list[str]:
        """``count`` requested object ids for a city."""
        if count < 0:
            raise ConfigurationError(f"negative count: {count}")
        return [self.sample_for_city(city) for _ in range(count)]
