"""Workload generation: popularity distributions and request streams."""

from repro.workloads.zipf import ZipfDistribution
from repro.workloads.regional import region_of_city, RegionalRequestMixer
from repro.workloads.requests import Request, RequestGenerator

__all__ = [
    "ZipfDistribution",
    "region_of_city",
    "RegionalRequestMixer",
    "Request",
    "RequestGenerator",
]
