"""Zipf popularity over a finite catalog.

Web and video request popularity is classically Zipf-like with exponent
around 0.7-1.0; the CDN experiments use it to decide what is worth caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class ZipfDistribution:
    """Finite Zipf: P(rank k) proportional to k^-s over n items."""

    n: int
    s: float = 0.9
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    _probs: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if self.s <= 0:
            raise ConfigurationError(f"s must be positive, got {self.s}")
        ranks = np.arange(1, self.n + 1, dtype=float)
        weights = ranks**-self.s
        self._probs = weights / weights.sum()

    def pmf(self, rank: int) -> float:
        """Probability of the 1-based ``rank``."""
        if not 1 <= rank <= self.n:
            raise ConfigurationError(f"rank {rank} outside [1, {self.n}]")
        return float(self._probs[rank - 1])

    def sample(self) -> int:
        """Draw one 1-based rank."""
        return int(self.rng.choice(self.n, p=self._probs)) + 1

    def sample_many(self, count: int) -> np.ndarray:
        """Draw ``count`` 1-based ranks."""
        if count < 0:
            raise ConfigurationError(f"negative count: {count}")
        return self.rng.choice(self.n, size=count, p=self._probs) + 1

    def head_mass(self, top_k: int) -> float:
        """Total probability mass of the ``top_k`` most popular items."""
        if not 1 <= top_k <= self.n:
            raise ConfigurationError(f"top_k {top_k} outside [1, {self.n}]")
        return float(self._probs[:top_k].sum())
