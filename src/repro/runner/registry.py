"""Rebuild experiment plans from their manifest ``config`` blocks.

An :class:`~repro.runner.shards.ExperimentPlan` carries closures
(``run_shard``/``merge``/``format``) that cannot cross a process boundary,
but its ``config`` is plain JSON and — by the shard-model contract — fully
determines the plan. The parallel executor therefore ships only the config
to its workers, and each worker rebuilds the plan locally through this
registry: ``config["experiment"]`` names a registered ``build_plan``
callable, the remaining keys are its keyword arguments.

Rebuilding is validated both ways: unknown config keys are refused (they
would silently change the plan), and the rebuilt plan must round-trip to
the exact same config (so a worker can never execute a subtly different
plan than the parent checkpointed).

Every in-tree experiment registers here; test suites and downstream code
can add their own plans with :func:`register_plan_builder` (under the
default ``fork`` start method, parent-process registrations are inherited
by workers automatically).
"""

from __future__ import annotations

import inspect
from importlib import import_module
from typing import Any, Callable

from repro.errors import RunnerError
from repro.runner.shards import ExperimentPlan

PlanBuilder = Callable[..., ExperimentPlan]
PlanLoader = Callable[[], PlanBuilder]

_LOADERS: dict[str, PlanLoader] = {}


def register_plan_builder(experiment: str, loader: PlanLoader) -> None:
    """Register ``loader`` (returning a ``build_plan`` callable) for
    ``experiment``. Loaders are lazy so registering the whole experiment
    suite costs no imports until a plan is actually rebuilt."""
    _LOADERS[experiment] = loader


def has_plan_builder(experiment: str) -> bool:
    """Whether :func:`plan_from_config` can rebuild ``experiment``."""
    return experiment in _LOADERS


def _module_loader(module: str) -> PlanLoader:
    def load() -> PlanBuilder:
        return import_module(module).build_plan

    return load


for _name in (
    "chaos",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure7",
    "figure8",
    "geoblocking",
    "overload",
    "table1",
):
    register_plan_builder(_name, _module_loader(f"repro.experiments.{_name}"))
register_plan_builder("selfchaos", _module_loader("repro.runner.selfchaos"))


def plan_from_config(config: dict[str, Any]) -> ExperimentPlan:
    """The plan whose ``plan.config`` equals ``config``, rebuilt by name.

    JSON cannot express tuples, so list-valued config entries are restored
    to tuples when the builder's default for that parameter is a tuple
    (``fractions``, ``countries``); everything else passes through as-is.
    """
    experiment = config.get("experiment")
    loader = _LOADERS.get(experiment)
    if loader is None:
        raise RunnerError(
            f"no registered plan builder for experiment {experiment!r}; "
            f"parallel workers can only rebuild plans registered with "
            f"repro.runner.registry.register_plan_builder"
        )
    builder = loader()
    kwargs = {key: value for key, value in config.items() if key != "experiment"}
    params = inspect.signature(builder).parameters
    unknown = sorted(set(kwargs) - set(params))
    if unknown:
        raise RunnerError(
            f"config for {experiment!r} holds keys {unknown} that its "
            f"build_plan() does not accept (package version drift? refuse "
            f"rather than guess)"
        )
    for name, value in kwargs.items():
        if isinstance(value, list) and isinstance(params[name].default, tuple):
            kwargs[name] = tuple(value)
    plan = builder(**kwargs)
    if plan.config != config:
        raise RunnerError(
            f"rebuilt plan for {experiment!r} does not round-trip its "
            f"config (internal error: build_plan() is not a pure function "
            f"of the config)"
        )
    return plan
