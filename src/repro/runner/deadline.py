"""Wall-clock budgets: whole-run deadline and per-shard watchdog.

The run deadline is checked between shards and, together with the
per-shard budget, enforced *during* a shard via ``SIGALRM`` (when running
on the main thread of a platform that has it) so a hung shard cannot wedge
the run. Where ``SIGALRM`` cannot fire (non-main thread, Windows) the
watchdog warns once and falls back to a wall-clock check when the shard
*completes* — overruns are still detected and budget semantics preserved
for every shard that terminates; truly hung shards need the parallel
executor's parent-side watchdog, which kills the worker process instead.
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import DeadlineExceededError, RunnerError, ShardTimeoutError


@dataclass
class Deadline:
    """A whole-run wall-clock budget measured on the monotonic clock."""

    budget_s: float | None
    _started: float = field(default_factory=time.monotonic)

    def __post_init__(self) -> None:
        if self.budget_s is not None and self.budget_s <= 0:
            raise RunnerError(f"deadline must be positive, got {self.budget_s}")

    def remaining_s(self) -> float | None:
        """Seconds left, or ``None`` for an unbounded run."""
        if self.budget_s is None:
            return None
        return self.budget_s - (time.monotonic() - self._started)

    def check(self) -> None:
        """Raise :class:`DeadlineExceededError` once the budget is spent."""
        remaining = self.remaining_s()
        if remaining is not None and remaining <= 0:
            raise DeadlineExceededError(
                f"run deadline of {self.budget_s:g}s exceeded; completed "
                f"shards are checkpointed — resume with --resume and a new "
                f"deadline"
            )


def _alarm_usable() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


_fallback_warned = False


def _warn_fallback_once() -> None:
    """One stderr warning per process when budgets lose mid-shard teeth."""
    global _fallback_warned
    if not _fallback_warned:
        _fallback_warned = True
        print(
            "runner: SIGALRM unavailable here (non-main thread or platform); "
            "shard/run budgets are checked when each shard completes, so a "
            "shard that never returns cannot be interrupted — use --jobs 2+ "
            "for a kill-capable parent-side watchdog",
            file=sys.stderr,
        )


@contextmanager
def shard_watchdog(
    shard_id: str, shard_budget_s: float | None, deadline: Deadline
) -> Iterator[None]:
    """Interrupt the enclosed shard when a wall-clock budget expires.

    The alarm fires at the *sooner* of the per-shard budget and the run
    deadline's remainder; which one was sooner decides the exception —
    :class:`ShardTimeoutError` (retryable) vs
    :class:`DeadlineExceededError` (terminal). Without ``SIGALRM`` the
    budgets are instead checked on completion: the overrun is detected one
    shard late rather than not at all.
    """
    remaining = deadline.remaining_s()
    candidates = [
        (budget, exc)
        for budget, exc in (
            (shard_budget_s, ShardTimeoutError),
            (remaining, DeadlineExceededError),
        )
        if budget is not None
    ]
    if not candidates:
        yield
        return
    if not _alarm_usable():
        _warn_fallback_once()
        started = time.monotonic()
        yield
        elapsed = time.monotonic() - started
        deadline.check()
        if shard_budget_s is not None and elapsed > shard_budget_s:
            raise ShardTimeoutError(
                f"shard {shard_id!r} took {elapsed:.3f}s, over its "
                f"{shard_budget_s:g}s budget (detected at completion; "
                f"SIGALRM unavailable)"
            )
        return
    budget, exc_type = min(candidates, key=lambda pair: pair[0])

    def _on_alarm(signum: int, frame: object) -> None:
        if exc_type is ShardTimeoutError:
            raise ShardTimeoutError(
                f"shard {shard_id!r} exceeded its {budget:g}s budget"
            )
        raise DeadlineExceededError(
            f"run deadline of {deadline.budget_s:g}s expired during shard "
            f"{shard_id!r}; completed shards are checkpointed"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    # A deadline that already expired still gets a real (tiny) alarm so the
    # pending-shard path raises from one place.
    signal.setitimer(signal.ITIMER_REAL, max(budget, 1e-3))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
