"""Wall-clock budgets: whole-run deadline and per-shard watchdog.

The run deadline is checked between shards and, together with the
per-shard budget, enforced *during* a shard via ``SIGALRM`` (when running
on the main thread of a platform that has it) so a hung shard cannot wedge
the run. Off the main thread the watchdog degrades to the between-shard
checks — still deadline-correct for runs whose shards terminate.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import DeadlineExceededError, RunnerError, ShardTimeoutError


@dataclass
class Deadline:
    """A whole-run wall-clock budget measured on the monotonic clock."""

    budget_s: float | None
    _started: float = field(default_factory=time.monotonic)

    def __post_init__(self) -> None:
        if self.budget_s is not None and self.budget_s <= 0:
            raise RunnerError(f"deadline must be positive, got {self.budget_s}")

    def remaining_s(self) -> float | None:
        """Seconds left, or ``None`` for an unbounded run."""
        if self.budget_s is None:
            return None
        return self.budget_s - (time.monotonic() - self._started)

    def check(self) -> None:
        """Raise :class:`DeadlineExceededError` once the budget is spent."""
        remaining = self.remaining_s()
        if remaining is not None and remaining <= 0:
            raise DeadlineExceededError(
                f"run deadline of {self.budget_s:g}s exceeded; completed "
                f"shards are checkpointed — resume with --resume and a new "
                f"deadline"
            )


def _alarm_usable() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def shard_watchdog(
    shard_id: str, shard_budget_s: float | None, deadline: Deadline
) -> Iterator[None]:
    """Interrupt the enclosed shard when a wall-clock budget expires.

    The alarm fires at the *sooner* of the per-shard budget and the run
    deadline's remainder; which one was sooner decides the exception —
    :class:`ShardTimeoutError` (retryable) vs
    :class:`DeadlineExceededError` (terminal).
    """
    remaining = deadline.remaining_s()
    candidates = [
        (budget, exc)
        for budget, exc in (
            (shard_budget_s, ShardTimeoutError),
            (remaining, DeadlineExceededError),
        )
        if budget is not None
    ]
    if not candidates or not _alarm_usable():
        yield
        return
    budget, exc_type = min(candidates, key=lambda pair: pair[0])

    def _on_alarm(signum: int, frame: object) -> None:
        if exc_type is ShardTimeoutError:
            raise ShardTimeoutError(
                f"shard {shard_id!r} exceeded its {budget:g}s budget"
            )
        raise DeadlineExceededError(
            f"run deadline of {deadline.budget_s:g}s expired during shard "
            f"{shard_id!r}; completed shards are checkpointed"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    # A deadline that already expired still gets a real (tiny) alarm so the
    # pending-shard path raises from one place.
    signal.setitimer(signal.ITIMER_REAL, max(budget, 1e-3))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
