"""The shard model: experiments as deterministic, seed-addressed work units.

A shard is the unit of checkpointing: small enough that losing one to a
crash is cheap, large enough that the per-shard store overhead is noise.
Each experiment module exposes ``build_plan(...)`` returning an
:class:`ExperimentPlan` whose shards are pure functions of (configuration,
shard id) — never of execution order or wall-clock time — so any subset can
be recomputed in any order and a resumed run converges on the same bytes.

Shard payloads must be JSON-serialisable; ``json`` round-trips Python
floats exactly (shortest-repr), so merging re-read payloads is bit-equal to
merging in-memory ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import RunnerError

_CURRENT_ATTEMPT: int | None = None


def current_attempt() -> int | None:
    """The 1-based attempt number of the shard currently executing.

    Set by the serial engine and by parallel workers around each
    ``run_shard`` call; ``None`` outside shard execution. Exists so
    attempt-scheduled behaviour (the self-chaos harness injecting a crash
    on attempt 1 but not attempt 2) can key off the *runner's* retry
    counter, which survives worker replacement, instead of per-process
    state, which does not."""
    return _CURRENT_ATTEMPT


def set_current_attempt(attempt: int | None) -> None:
    """Record the attempt number for :func:`current_attempt`."""
    global _CURRENT_ATTEMPT
    _CURRENT_ATTEMPT = attempt


@dataclass(frozen=True)
class ExperimentPlan:
    """A sharded experiment: ids, per-shard work, and the merge step.

    ``config`` is the complete JSON-serialisable parameterisation (seed
    included); its canonical hash keys the run manifest. ``run_shard`` maps
    a shard id to a JSON-serialisable payload; ``merge`` folds the full
    ``{shard_id: payload}`` mapping into the experiment's result object,
    which ``format`` renders exactly like the monolithic path.
    """

    experiment: str
    config: dict[str, Any]
    shard_ids: tuple[str, ...]
    run_shard: Callable[[str], Any] = field(repr=False)
    merge: Callable[[dict[str, Any]], Any] = field(repr=False)
    format: Callable[[Any], str] = field(repr=False)

    def __post_init__(self) -> None:
        if not self.shard_ids:
            raise RunnerError(f"experiment {self.experiment!r} declared no shards")
        if len(set(self.shard_ids)) != len(self.shard_ids):
            raise RunnerError(
                f"experiment {self.experiment!r} declared duplicate shard ids"
            )
