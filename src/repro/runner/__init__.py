"""Crash-safe, resumable experiment execution.

Every experiment declares its work as deterministic, seed-addressed shards
(:class:`~repro.runner.shards.ExperimentPlan`); the
:class:`~repro.runner.engine.ExperimentRunner` executes the plan under a
run directory with per-shard atomic checkpoints, a manifest guarding
``--resume`` against mixing incompatible runs, wall-clock deadlines, retry
with backoff, and graceful SIGINT/SIGTERM handling. A run killed after *k*
shards resumes with the remaining shards and produces output byte-identical
to an uninterrupted run with the same seed.
"""

from repro.runner.deadline import Deadline, shard_watchdog
from repro.runner.engine import ExperimentRunner, RunnerOptions
from repro.runner.interrupt import InterruptGuard
from repro.runner.shards import ExperimentPlan
from repro.runner.store import CheckpointStore, build_manifest

__all__ = [
    "CheckpointStore",
    "Deadline",
    "ExperimentPlan",
    "ExperimentRunner",
    "InterruptGuard",
    "RunnerOptions",
    "build_manifest",
    "shard_watchdog",
]
