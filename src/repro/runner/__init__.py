"""Crash-safe, resumable experiment execution.

Every experiment declares its work as deterministic, seed-addressed shards
(:class:`~repro.runner.shards.ExperimentPlan`); the
:class:`~repro.runner.engine.ExperimentRunner` executes the plan under a
run directory with per-shard atomic checkpoints, a manifest guarding
``--resume`` against mixing incompatible runs, wall-clock deadlines, retry
with backoff, and graceful SIGINT/SIGTERM handling. A run killed after *k*
shards resumes with the remaining shards and produces output byte-identical
to an uninterrupted run with the same seed.

``jobs>1`` in :class:`~repro.runner.engine.RunnerOptions` executes the
shards N-wide on a supervised worker pool (:mod:`repro.runner.parallel`)
that survives worker crashes, hangs, and kills — retrying against the same
budget, quarantining repeat offenders, and keeping every byte-identical
resume guarantee, since checkpoints are written by the parent only and
``jobs`` never enters the manifest.
"""

from repro.runner.deadline import Deadline, shard_watchdog
from repro.runner.engine import ExperimentRunner, RunnerOptions
from repro.runner.interrupt import InterruptGuard
from repro.runner.registry import (
    has_plan_builder,
    plan_from_config,
    register_plan_builder,
)
from repro.runner.shards import ExperimentPlan, current_attempt
from repro.runner.store import CheckpointStore, build_manifest

__all__ = [
    "CheckpointStore",
    "Deadline",
    "ExperimentPlan",
    "ExperimentRunner",
    "InterruptGuard",
    "RunnerOptions",
    "build_manifest",
    "current_attempt",
    "has_plan_builder",
    "plan_from_config",
    "register_plan_builder",
    "shard_watchdog",
]
