"""Supervised N-wide shard execution: a worker pool that expects to die.

``--jobs N`` runs the plan's pending shards on N worker processes under a
parent-side supervisor. The design treats workers as unreliable by
contract:

* **Workers compute, the parent persists.** A worker receives
  ``("run", shard_id, attempt)``, rebuilds the plan from its config
  (:mod:`repro.runner.registry` — closures never cross the pipe), runs the
  shard, and sends the payload back. Every checkpoint write, manifest
  update, and integrity hash stays in the parent, so the atomic-write
  machinery of :mod:`repro.runner.store` is untouched and a dying worker
  can never leave a torn or unverified file.
* **Crashes are exit codes, not exceptions.** A worker that segfaults,
  is OOM-killed, or ``os._exit``\\ s is noticed through its process
  sentinel; its in-flight shard re-enters the queue against the same
  :class:`~repro.faults.retry.RetryPolicy` budget and runs on a fresh
  worker.
* **Hangs are the parent's problem.** ``SIGALRM`` cannot interrupt a
  worker from the parent, so ``--shard-deadline-s`` is enforced by a
  parent-side watchdog over heartbeat/assignment timestamps: an overdue
  worker is killed and its shard retried.
* **Repeat offenders are quarantined.** A shard that fails its whole
  retry budget — by any mix of crash, kill, hang, garbage payload, or
  exception — is set aside with the evidence written to
  ``quarantine.json`` while the rest of the run completes; the run then
  exits with :class:`~repro.errors.ShardQuarantinedError` (its own exit
  code) instead of deadlocking or losing the healthy shards.
* **Observability is shipped, never shared.** Under an instrumented
  parent each worker records into its own recorder and drains it to a
  serialisable delta per shard attempt, shipped inside the result message
  and parked in an atomic ``obs/`` sidecar the parent salvages if the
  worker dies first (:mod:`repro.obs.merge`). The parent folds every
  delta into the run's recorder, so a ``--jobs 8`` run and a ``--jobs 1``
  run report identical aggregate counters and histograms — and, because
  the windowed time-series pillar (:mod:`repro.obs.timeseries`) keys every
  cell by *simulated* time and stores only integers, byte-identical
  per-window series too, regardless of shard completion order.
* **Signals drain, then stop.** The first SIGINT/SIGTERM stops new
  assignments and waits for in-flight shards to finish and flush; the
  second terminates the pool immediately (both via
  :class:`~repro.runner.interrupt.InterruptGuard`). ``--deadline-s`` is
  enforced across all workers: on expiry the pool is killed and completed
  shards remain checkpointed.

Because shards are deterministic and order-independent and the merge reads
every payload back from disk, ``--jobs`` affects only wall-clock time:
it is deliberately excluded from the resume-compatibility hash, and a run
started at ``--jobs 8`` resumes at ``--jobs 1`` (or vice versa) with
byte-identical output.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.atomicio import atomic_write_text
from repro.errors import (
    ObsError,
    RunInterruptedError,
    RunnerError,
    ShardQuarantinedError,
)
from repro.obs.recorder import get_recorder
from repro.runner.deadline import Deadline
from repro.runner.interrupt import InterruptGuard
from repro.runner.registry import has_plan_builder, plan_from_config
from repro.runner.shards import ExperimentPlan, set_current_attempt
from repro.runner.store import CheckpointStore, canonical_json

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.runner.engine import RunnerOptions

HEARTBEAT_INTERVAL_S = 0.5
"""How often each worker's pulse thread pings the parent."""

_POLL_TIMEOUT_S = 0.1
"""Upper bound on one supervisor tick while waiting for events."""

_STOP_GRACE_S = 1.0
"""How long shutdown waits for a worker before escalating to SIGKILL."""

QUARANTINE_FORMAT_VERSION = 1

_post_sidecar_test_hook = None
"""Test seam: called as ``(shard_id, attempt)`` in the worker right after
its obs sidecar lands and before the result message is sent. Fork-started
workers inherit a monkeypatched value, letting tests kill a worker in the
exact window where the sidecar is the only surviving copy of its obs."""


def default_start_method() -> str:
    """``fork`` where the platform offers it (cheap, inherits registry
    registrations), else ``spawn``."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------


def _worker_main(
    conn: Connection,
    config: dict[str, Any],
    worker_id: int,
    heartbeat_interval_s: float,
    obs_sidecar_dir: str | None = None,
) -> None:
    """One worker process: rebuild the plan, then serve run requests.

    Never touches the checkpoint store — persistence is a parent-side
    concern. Ignores SIGINT (the parent owns interruption policy) and
    leaves SIGTERM at its default so the parent's ``terminate()`` works
    even mid-shard.

    With ``obs_sidecar_dir`` set (the parent runs instrumented) the worker
    records into its own live recorder and, after every shard attempt,
    drains it into a serialisable delta that travels back two ways: inside
    the result message, and as an atomic per-attempt sidecar file the
    parent salvages if this process dies before the message lands. With it
    unset the recorder is the no-op default and deltas are ``None``.
    """
    import signal as _signal

    _signal.signal(_signal.SIGINT, _signal.SIG_IGN)
    if hasattr(_signal, "SIGTERM"):
        _signal.signal(_signal.SIGTERM, _signal.SIG_DFL)
    from repro.obs.recorder import ObsRecorder, reset_recorder, set_recorder

    if obs_sidecar_dir is None:
        reset_recorder()
    else:
        set_recorder(ObsRecorder())

    def _snapshot_and_park(shard_id: str, attempt: int) -> dict | None:
        """This attempt's obs as a delta, parked in a crash-salvage sidecar."""
        if obs_sidecar_dir is None:
            return None
        delta = get_recorder().snapshot_delta(drain=True)
        try:
            atomic_write_text(
                Path(obs_sidecar_dir) / f"{shard_id}.a{attempt}.json",
                json.dumps(
                    {
                        "shard": shard_id,
                        "attempt": attempt,
                        "worker": worker_id,
                        "delta": delta,
                    }
                ),
            )
        except OSError:
            pass  # salvage is best-effort; the pipe copy still ships
        hook = _post_sidecar_test_hook
        if hook is not None:
            hook(shard_id, attempt)
        return delta

    send_lock = threading.Lock()
    inflight: dict[str, Any] = {"shard": None, "attempt": None}
    stop_pulse = threading.Event()

    def _send(message: tuple) -> None:
        with send_lock:
            conn.send(message)

    def _pulse() -> None:
        while not stop_pulse.wait(heartbeat_interval_s):
            try:
                _send(("hb", worker_id, inflight["shard"], inflight["attempt"]))
            except Exception:
                return  # parent is gone; the daemon thread just stops

    threading.Thread(target=_pulse, name="heartbeat", daemon=True).start()

    try:
        plan = plan_from_config(config)
    except Exception as exc:  # noqa: BLE001 - report, parent decides
        _send(("fatal", worker_id, f"{type(exc).__name__}: {exc}"))
        return
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent died or closed us out
        if message[0] == "stop":
            return
        _, shard_id, attempt = message
        inflight["shard"], inflight["attempt"] = shard_id, attempt
        set_current_attempt(attempt)
        _send(("start", worker_id, shard_id, attempt))
        started = time.perf_counter()
        try:
            payload = plan.run_shard(shard_id)
        except BaseException as exc:  # noqa: BLE001 - everything is reportable
            delta = _snapshot_and_park(shard_id, attempt)
            _send(
                (
                    "err",
                    worker_id,
                    shard_id,
                    attempt,
                    "exception",
                    f"{type(exc).__name__}: {exc}",
                    delta,
                )
            )
        else:
            wall_s = time.perf_counter() - started
            delta = _snapshot_and_park(shard_id, attempt)
            try:
                _send(("ok", worker_id, shard_id, attempt, payload, wall_s, delta))
            except Exception as exc:  # noqa: BLE001 - unpicklable payload
                _send(
                    (
                        "err",
                        worker_id,
                        shard_id,
                        attempt,
                        "garbage",
                        f"unsendable payload: {type(exc).__name__}: {exc}",
                        delta,
                    )
                )
        inflight["shard"] = inflight["attempt"] = None
        set_current_attempt(None)


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------


@dataclass
class _Worker:
    """Parent-side view of one worker process."""

    wid: int
    proc: Any
    conn: Connection
    shard: str | None = None
    attempt: int = 0
    busy_since: float = 0.0  # monotonic; reset by the worker's "start" ack


@dataclass
class _ShardState:
    """Retry bookkeeping for one pending shard."""

    attempts: int = 0
    eligible_at: float = 0.0  # monotonic; backoff gate for the next attempt
    failures: list[dict[str, Any]] = field(default_factory=list)


def execute_pending_parallel(
    plan: ExperimentPlan,
    store: CheckpointStore,
    options: "RunnerOptions",
    pending: list[str],
    deadline: Deadline,
    guard: InterruptGuard,
    already_done: int,
    prior_shard_seconds: dict[str, float] | None = None,
) -> int:
    """Run ``pending`` shards on up to ``options.jobs`` workers.

    Returns the number of shards newly checkpointed. Raises
    :class:`RunInterruptedError` (drained stop), ``DeadlineExceededError``
    (via ``deadline.check``), :class:`ShardQuarantinedError` (some shards
    exhausted their budget), or :class:`RunnerError` (workers cannot
    rebuild the plan). In every case the pool is torn down and each
    completed shard is already flushed.
    """
    if not has_plan_builder(plan.experiment):
        raise RunnerError(
            f"--jobs {options.jobs} needs workers to rebuild the "
            f"{plan.experiment!r} plan from its config, but no plan builder "
            f"is registered for it; run serially or register one via "
            f"repro.runner.registry.register_plan_builder"
        )
    ctx = mp.get_context(options.mp_start_method or default_start_method())
    policy = options.retry_policy
    rec = get_recorder()
    total = already_done + len(pending)

    state = {shard_id: _ShardState() for shard_id in pending}
    queue: deque[str] = deque(pending)
    workers: dict[int, _Worker] = {}
    quarantined: dict[str, _ShardState] = {}
    shard_seconds = dict(prior_shard_seconds or {})
    shard_workers: dict[str, int] = {}
    heartbeats: dict[str, int] = {}
    next_wid = 0
    executed = 0
    draining: str | None = None  # None | "signal" | "max-shards"
    merged: set[tuple[str, int]] = set()  # (shard, attempt) deltas folded in
    obs_sidecar_dir: str | None = None
    if rec.enabled:
        store.obs_dir.mkdir(parents=True, exist_ok=True)
        obs_sidecar_dir = str(store.obs_dir)

    def _sidecar_path(shard_id: str, attempt: int) -> Path:
        return store.obs_dir / f"{shard_id}.a{attempt}.json"

    def _discard_sidecar(shard_id: str, attempt: int) -> None:
        try:
            _sidecar_path(shard_id, attempt).unlink()
        except OSError:
            pass

    def _merge_worker_delta(
        delta: dict | None,
        shard_id: str,
        attempt: int,
        wid: int,
        salvaged: bool = False,
    ) -> None:
        """Fold one worker attempt's obs delta into the parent recorder.

        The ``merged`` set makes channel delivery and sidecar salvage of
        the same attempt idempotent: whichever copy arrives first wins,
        the other is discarded.
        """
        if not rec.enabled or delta is None or (shard_id, attempt) in merged:
            return
        merged.add((shard_id, attempt))
        try:
            rec.merge_delta(
                delta, extra_labels=(("shard", shard_id), ("worker", str(wid)))
            )
        except (ObsError, KeyError, TypeError, ValueError) as exc:
            print(
                f"obs: dropping undecodable delta for shard {shard_id} "
                f"attempt {attempt}: {exc}",
                file=sys.stderr,
            )
            return
        rec.inc(
            "repro_obs_deltas_salvaged_total"
            if salvaged
            else "repro_obs_deltas_merged_total"
        )
        _discard_sidecar(shard_id, attempt)

    def _salvage_sidecar(shard_id: str, attempt: int) -> None:
        """Recover a dead worker's parked obs delta, if the pipe lost it."""
        if not rec.enabled or (shard_id, attempt) in merged:
            return
        try:
            record = json.loads(_sidecar_path(shard_id, attempt).read_text())
            delta = record["delta"]
            wid = int(record.get("worker", -1))
        except (OSError, ValueError, KeyError, TypeError):
            return  # no sidecar (worker died pre-write) or a torn irrelevance
        _merge_worker_delta(delta, shard_id, attempt, wid, salvaged=True)
        rec.event("obs_salvaged", shard=shard_id, attempt=attempt, worker=wid)

    def _sweep_sidecars() -> None:
        """Final pass: salvage any unmerged sidecars, then clear the dir."""
        if not rec.enabled:
            return
        for path in sorted(store.obs_dir.glob("*.json")):
            name = path.name[: -len(".json")]
            shard_id, separator, raw_attempt = name.rpartition(".a")
            if separator and shard_id and raw_attempt.isdigit():
                _salvage_sidecar(shard_id, int(raw_attempt))
            try:
                path.unlink()
            except OSError:
                pass
        try:
            store.obs_dir.rmdir()
        except OSError:
            pass  # non-empty (foreign files) or already gone

    def _update_obs() -> None:
        if rec.enabled:
            store.update_manifest_obs(
                {
                    "shard_seconds": shard_seconds,
                    "shard_workers": shard_workers,
                    "worker_heartbeats": heartbeats,
                }
            )

    def _write_quarantine_record() -> None:
        store.write_quarantine_record(
            {
                "format_version": QUARANTINE_FORMAT_VERSION,
                "experiment": plan.experiment,
                "max_attempts": policy.max_attempts,
                "shards": {
                    shard_id: {
                        "attempts": st.attempts,
                        "failures": st.failures,
                    }
                    for shard_id, st in sorted(quarantined.items())
                },
            }
        )

    def _spawn() -> _Worker:
        nonlocal next_wid
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                plan.config,
                next_wid,
                HEARTBEAT_INTERVAL_S,
                obs_sidecar_dir,
            ),
            name=f"repro-shard-worker-{next_wid}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        worker = _Worker(wid=next_wid, proc=proc, conn=parent_conn)
        workers[next_wid] = worker
        next_wid += 1
        if rec.enabled:
            rec.inc("repro_runner_worker_spawns_total")
            rec.set_gauge("repro_runner_workers", len(workers))
            rec.event("worker_spawned", worker=worker.wid, pid=proc.pid)
        return worker

    def _remove(worker: _Worker) -> None:
        """Kill (if needed) and forget one worker."""
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.proc.is_alive():
            worker.proc.terminate()
            worker.proc.join(_STOP_GRACE_S)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(_STOP_GRACE_S)
        workers.pop(worker.wid, None)
        if rec.enabled:
            rec.set_gauge("repro_runner_workers", len(workers))

    def _fail(shard_id: str, attempt: int, kind: str, detail: str, now: float) -> None:
        """One attempt failed; requeue with backoff or quarantine."""
        st = state[shard_id]
        st.failures.append({"attempt": attempt, "kind": kind, "detail": detail})
        if rec.enabled:
            rec.inc("repro_runner_shard_failures_total", labels=(("kind", kind),))
        if st.attempts >= policy.max_attempts:
            quarantined[shard_id] = st
            _write_quarantine_record()
            rec.event(
                "shard_quarantined", shard=shard_id, attempts=st.attempts, kind=kind
            )
            print(
                f"runner: quarantining shard {shard_id!r} after "
                f"{st.attempts} attempt(s); last failure: {kind}: {detail}",
                file=sys.stderr,
            )
        else:
            rec.event(
                "shard_retried",
                shard=shard_id,
                attempt=attempt,
                kind=kind,
                detail=detail,
            )
            if draining is None:
                st.eligible_at = now + policy.backoff_ms(st.attempts) / 1000.0
            queue.append(shard_id)

    def _handle_message(worker: _Worker, message: tuple, now: float) -> None:
        nonlocal executed
        kind = message[0]
        if kind == "hb":
            heartbeats[str(worker.wid)] = heartbeats.get(str(worker.wid), 0) + 1
            return
        if kind == "start":
            # The shard is actually running now; the watchdog measures
            # from here, not from when the request entered the pipe.
            worker.busy_since = now
            return
        if kind == "fatal":
            raise RunnerError(
                f"worker {worker.wid} could not rebuild the "
                f"{plan.experiment!r} plan: {message[2]}"
            )
        if kind == "ok":
            _, wid, shard_id, attempt, payload, wall_s, delta = message
            # Merge before the stale-echo check: even a shard the parent
            # has since failed elsewhere really did run — its obs counts.
            _merge_worker_delta(delta, shard_id, attempt, wid)
            if worker.shard != shard_id:
                return  # stale echo of a shard already failed elsewhere
            worker.shard = None
            try:
                canonical_json(payload)
            except (TypeError, ValueError) as exc:
                _fail(
                    shard_id,
                    attempt,
                    "garbage",
                    f"payload is not JSON-serialisable: {exc}",
                    now,
                )
                return
            store.write_shard(shard_id, payload)
            executed += 1
            if rec.enabled:
                shard_seconds[shard_id] = round(wall_s, 6)
                shard_workers[shard_id] = wid
                _update_obs()
                rec.event(
                    "shard_completed",
                    shard=shard_id,
                    attempt=attempt,
                    worker=wid,
                    wall_s=round(wall_s, 6),
                )
                every = options.progress_every
                if every is not None and executed % every == 0:
                    print(
                        f"obs: shard {shard_id} done in {wall_s:.2f}s on "
                        f"worker {wid} ({already_done + executed}/{total} "
                        f"on disk)",
                        file=sys.stderr,
                    )
            return
        if kind == "err":
            _, wid, shard_id, attempt, failure_kind, detail, delta = message
            _merge_worker_delta(delta, shard_id, attempt, wid)
            if worker.shard != shard_id:
                return
            worker.shard = None
            _fail(shard_id, attempt, failure_kind, detail, now)

    def _drain_conn(worker: _Worker, now: float) -> None:
        while worker.wid in workers:
            try:
                if not worker.conn.poll():
                    return
                message = worker.conn.recv()
            except (EOFError, OSError):
                return  # death is handled via the sentinel
            _handle_message(worker, message, now)

    def _handle_death(worker: _Worker, now: float) -> None:
        _drain_conn(worker, now)  # a final "ok" may be queued; prefer it
        if worker.wid not in workers:
            return
        # The sentinel can fire a beat before the child is reaped, leaving
        # exitcode momentarily None; a short join closes that window.
        worker.proc.join(_STOP_GRACE_S)
        exitcode = worker.proc.exitcode
        shard_id, attempt = worker.shard, worker.attempt
        _remove(worker)
        if rec.enabled:
            rec.inc("repro_runner_worker_deaths_total")
            rec.event(
                "worker_died",
                worker=worker.wid,
                exitcode=exitcode,
                shard=shard_id,
            )
        if shard_id is not None:
            # The worker may have parked this attempt's obs in its sidecar
            # after finishing the shard but before its result message
            # survived the pipe; that work happened, so salvage it.
            _salvage_sidecar(shard_id, attempt)
            _fail(
                shard_id,
                attempt,
                "crash",
                f"worker {worker.wid} died with exit code {exitcode}",
                now,
            )

    def _handle_overdue(worker: _Worker, now: float) -> None:
        _drain_conn(worker, now)  # a just-finished result beats a kill
        if worker.wid not in workers or worker.shard is None:
            return
        shard_id, attempt = worker.shard, worker.attempt
        _remove(worker)
        if rec.enabled:
            rec.inc("repro_runner_shard_timeouts_total")
            rec.event(
                "worker_killed",
                worker=worker.wid,
                shard=shard_id,
                timeout_s=options.shard_deadline_s,
            )
            _salvage_sidecar(shard_id, attempt)
        _fail(
            shard_id,
            attempt,
            "timeout",
            f"no result within --shard-deadline-s="
            f"{options.shard_deadline_s:g}s; worker {worker.wid} killed",
            now,
        )

    def _inflight() -> list[_Worker]:
        return [w for w in workers.values() if w.shard is not None]

    def _assign(now: float) -> None:
        while True:
            if options.max_shards is not None:
                busy = len(_inflight())
                if executed + busy >= options.max_shards:
                    return
            eligible = next(
                (s for s in queue if state[s].eligible_at <= now), None
            )
            if eligible is None:
                return
            worker = next(
                (w for w in workers.values() if w.shard is None), None
            )
            if worker is None:
                if len(workers) >= options.jobs:
                    return
                worker = _spawn()
            queue.remove(eligible)
            st = state[eligible]
            st.attempts += 1
            worker.shard = eligible
            worker.attempt = st.attempts
            worker.busy_since = now
            try:
                worker.conn.send(("run", eligible, st.attempts))
            except (OSError, ValueError):
                # Worker vanished between spawn and send; its sentinel
                # fires on the next tick and requeues the shard.
                return
            rec.event(
                "shard_assigned",
                shard=eligible,
                attempt=st.attempts,
                worker=worker.wid,
            )

    def _wait_timeout(now: float) -> float:
        timeout = _POLL_TIMEOUT_S
        if options.shard_deadline_s is not None:
            for worker in _inflight():
                due_in = options.shard_deadline_s - (now - worker.busy_since)
                timeout = min(timeout, max(due_in, 0.01))
        remaining = deadline.remaining_s()
        if remaining is not None:
            timeout = min(timeout, max(remaining, 0.01))
        for shard_id in queue:
            gate = state[shard_id].eligible_at - now
            if gate > 0:
                timeout = min(timeout, max(gate, 0.01))
        return timeout

    def _shutdown_pool() -> None:
        for worker in list(workers.values()):
            if worker.proc.is_alive() and worker.shard is None:
                try:
                    worker.conn.send(("stop",))
                except (OSError, ValueError):
                    pass
        patience = time.monotonic() + _STOP_GRACE_S
        for worker in list(workers.values()):
            if worker.shard is None:
                worker.proc.join(max(patience - time.monotonic(), 0.05))
        for worker in list(workers.values()):
            _remove(worker)

    try:
        while True:
            now = time.monotonic()
            deadline.check()  # expiry kills the pool via the finally below
            if draining is None and guard.interrupted:
                draining = "signal"
                rec.event("drain", reason="signal", inflight=len(_inflight()))
                print(
                    f"runner: interrupt received; draining "
                    f"{len(_inflight())} in-flight shard(s) before exiting",
                    file=sys.stderr,
                )
            if (
                draining is None
                and options.max_shards is not None
                and executed >= options.max_shards
            ):
                draining = "max-shards"
                rec.event("drain", reason="max-shards", inflight=len(_inflight()))
            if draining is not None:
                if not _inflight():
                    break
            else:
                if not queue and not _inflight():
                    break
                _assign(now)
                if not queue and not _inflight():
                    break
            timeout = _wait_timeout(now)
            by_conn = {w.conn: w for w in workers.values()}
            by_sentinel = {w.proc.sentinel: w for w in workers.values()}
            if by_conn:
                ready = connection_wait(
                    list(by_conn) + list(by_sentinel), timeout
                )
            else:
                time.sleep(min(timeout, _POLL_TIMEOUT_S))
                ready = []
            now = time.monotonic()
            for obj in ready:
                worker = by_conn.get(obj)
                if worker is not None and worker.wid in workers:
                    _drain_conn(worker, now)
            for obj in ready:
                worker = by_sentinel.get(obj)
                if worker is not None and worker.wid in workers:
                    _handle_death(worker, now)
            if options.shard_deadline_s is not None:
                for worker in list(workers.values()):
                    if (
                        worker.shard is not None
                        and now - worker.busy_since > options.shard_deadline_s
                    ):
                        _handle_overdue(worker, now)
    finally:
        _shutdown_pool()
        _sweep_sidecars()
        _update_obs()

    if draining == "signal":
        guard.check()  # raises RunInterruptedError naming the signal
    if draining == "max-shards":
        raise RunInterruptedError(
            f"stopping after --max-shards={options.max_shards} "
            f"({already_done + executed}/{total} shards on disk); "
            f"resume with --resume"
        )
    if quarantined:
        raise ShardQuarantinedError(
            f"{len(quarantined)} shard(s) quarantined after exhausting "
            f"{policy.max_attempts} attempt(s) each: "
            f"{sorted(quarantined)}; the other "
            f"{already_done + executed} completed shard(s) are "
            f"checkpointed — see {store.quarantine_record_path} for the "
            f"failure evidence, fix the cause, then rerun with --resume"
        )
    return executed
