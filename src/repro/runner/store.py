"""Atomic per-shard checkpoint store and the run manifest.

Layout of a run directory::

    RUNDIR/
      manifest.json        # experiment, config + hash, version, shard plan
      shards/<id>.json     # one checkpoint per completed shard
      quarantine/          # corrupt checkpoint files, moved aside
      result.txt           # final formatted output (only on full completion)
      events.jsonl         # run event log (instrumented runs only)
      obs/                 # in-flight worker obs sidecars (parallel + --obs;
                           # drained into the parent and removed on exit)

Every file is written tmp + ``fsync`` + ``os.replace``
(:mod:`repro.atomicio`), so a crash at any instant leaves either no file or
a complete one. Checkpoints embed a SHA-256 of their canonical payload;
a file that fails to parse or verify is *quarantined* (moved into
``quarantine/``) and its shard recomputed — corruption costs one shard,
never the run.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Any

from repro import __version__
from repro.atomicio import atomic_write_text
from repro.errors import CheckpointError, ManifestMismatchError, RunnerError
from repro.runner.shards import ExperimentPlan

FORMAT_VERSION = 1
_SHARD_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def config_hash(config: dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON encoding of a plan configuration."""
    return hashlib.sha256(canonical_json(config).encode()).hexdigest()


def build_manifest(plan: ExperimentPlan) -> dict[str, Any]:
    """The manifest pinning a run directory to one exact plan."""
    return {
        "format_version": FORMAT_VERSION,
        "experiment": plan.experiment,
        "config": plan.config,
        "config_hash": config_hash(plan.config),
        "package_version": __version__,
        "shard_ids": list(plan.shard_ids),
    }


def check_resume_compatible(
    existing: dict[str, Any], expected: dict[str, Any]
) -> None:
    """Refuse to resume into a run directory built for a different run."""
    for key in ("format_version", "experiment", "config_hash", "package_version"):
        if existing.get(key) != expected.get(key):
            raise ManifestMismatchError(
                f"cannot resume: run directory was created for "
                f"{key}={existing.get(key)!r}, this invocation has "
                f"{key}={expected.get(key)!r}; use a fresh --out-dir or "
                f"matching parameters"
            )
    if existing.get("shard_ids") != expected.get("shard_ids"):
        raise ManifestMismatchError(
            "cannot resume: the shard plan changed for an identical "
            "configuration (internal error)"
        )


class CheckpointStore:
    """Crash-safe persistence for one run directory."""

    def __init__(self, run_dir: str | Path) -> None:
        self.run_dir = Path(run_dir)
        self.shard_dir = self.run_dir / "shards"
        self.quarantine_dir = self.run_dir / "quarantine"
        self.quarantine_record_path = self.run_dir / "quarantine.json"
        self.manifest_path = self.run_dir / "manifest.json"
        self.result_path = self.run_dir / "result.txt"
        self.events_path = self.run_dir / "events.jsonl"
        self.obs_dir = self.run_dir / "obs"
        try:
            self.shard_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create run directory {self.run_dir}: {exc}"
            ) from exc

    # -- manifest ----------------------------------------------------------

    def load_manifest(self) -> dict[str, Any] | None:
        """The stored manifest, or ``None`` for a fresh directory.

        A manifest that exists but cannot be parsed means the directory's
        provenance is unknowable; that is a hard error, not a quarantine.
        """
        if not self.manifest_path.exists():
            return None
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise RunnerError(
                f"unreadable manifest {self.manifest_path}: {exc}; "
                f"start over with a fresh --out-dir"
            ) from exc
        if not isinstance(manifest, dict):
            raise RunnerError(
                f"malformed manifest {self.manifest_path}; "
                f"start over with a fresh --out-dir"
            )
        return manifest

    def write_manifest(self, manifest: dict[str, Any]) -> None:
        atomic_write_text(self.manifest_path, json.dumps(manifest, indent=1))

    def update_manifest_obs(self, obs: dict[str, Any]) -> None:
        """Merge observability timings into the stored manifest.

        Resume-safe by construction: :func:`check_resume_compatible`
        compares only the identity keys, so an ``obs`` section added by an
        instrumented run never blocks a later ``--resume`` (instrumented or
        not).
        """
        manifest = self.load_manifest()
        if manifest is None:
            return
        manifest["obs"] = obs
        self.write_manifest(manifest)

    # -- shard checkpoints -------------------------------------------------

    def _shard_path(self, shard_id: str) -> Path:
        if not _SHARD_ID_RE.match(shard_id):
            raise CheckpointError(f"unsafe shard id {shard_id!r}")
        return self.shard_dir / f"{shard_id}.json"

    def write_shard(self, shard_id: str, payload: Any) -> None:
        """Persist one shard's payload atomically with an integrity hash."""
        record = {
            "format_version": FORMAT_VERSION,
            "shard_id": shard_id,
            "checksum": hashlib.sha256(canonical_json(payload).encode()).hexdigest(),
            "payload": payload,
        }
        atomic_write_text(self._shard_path(shard_id), json.dumps(record, indent=1))

    def load_shard(self, shard_id: str) -> Any | None:
        """One shard's payload; ``None`` if absent or quarantined-as-corrupt."""
        path = self._shard_path(shard_id)
        if not path.exists():
            return None
        try:
            record = json.loads(path.read_text())
            if (
                not isinstance(record, dict)
                or record.get("format_version") != FORMAT_VERSION
                or record.get("shard_id") != shard_id
                or "payload" not in record
                or "checksum" not in record
            ):
                raise ValueError("malformed checkpoint record")
            digest = hashlib.sha256(
                canonical_json(record["payload"]).encode()
            ).hexdigest()
            if digest != record["checksum"]:
                raise ValueError("checksum mismatch")
        except (OSError, ValueError) as exc:
            self._quarantine(path, reason=str(exc))
            return None
        return record["payload"]

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt file aside (evidence kept, shard recomputed)."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        for attempt in range(1000):
            target = self.quarantine_dir / f"{path.name}.{attempt}"
            if not target.exists():
                break
        try:
            path.replace(target)
        except OSError as exc:  # pragma: no cover - unwritable quarantine
            raise CheckpointError(
                f"corrupt checkpoint {path} ({reason}) could not be "
                f"quarantined: {exc}"
            ) from exc

    def completed_shards(self, shard_ids: tuple[str, ...]) -> dict[str, Any]:
        """Payloads of every valid on-disk checkpoint among ``shard_ids``."""
        done: dict[str, Any] = {}
        for shard_id in shard_ids:
            payload = self.load_shard(shard_id)
            if payload is not None:
                done[shard_id] = payload
        return done

    # -- quarantined-shard record ------------------------------------------

    def write_quarantine_record(self, record: dict[str, Any]) -> None:
        """Persist the supervisor's evidence about quarantined shards.

        Distinct from the ``quarantine/`` directory (corrupt *checkpoint
        files* moved aside): this records shards whose *execution* kept
        failing — which attempts, which failure kind (crash / hang /
        garbage / exception), and the detail string for each."""
        atomic_write_text(self.quarantine_record_path, json.dumps(record, indent=1))

    def load_quarantine_record(self) -> dict[str, Any] | None:
        """The stored quarantine record, or ``None`` when absent/unreadable."""
        if not self.quarantine_record_path.exists():
            return None
        try:
            record = json.loads(self.quarantine_record_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def clear_quarantine_record(self) -> None:
        """Drop the record (a later run completed every shard)."""
        try:
            self.quarantine_record_path.unlink()
        except FileNotFoundError:
            pass

    # -- final result ------------------------------------------------------

    def write_result_text(self, text: str) -> None:
        atomic_write_text(self.result_path, text)
