"""Graceful SIGINT/SIGTERM handling for checkpointed runs.

The first signal only sets a flag; the runner notices it at the next
shard boundary, after the in-flight shard has been checkpointed, and exits
with the interruption exit code — CI teardown or preemption never loses
completed work. A second signal aborts immediately (the escape hatch for a
shard that will not finish).
"""

from __future__ import annotations

import signal
import threading
import time
from types import FrameType
from typing import Callable

from repro.errors import RunInterruptedError

_SIGNALS = (signal.SIGINT, signal.SIGTERM)

BACKOFF_SLICE_S = 0.05
"""Granularity of :meth:`InterruptGuard.wait`: the longest a first signal
can go unnoticed inside a retry backoff."""


class InterruptGuard:
    """Context manager turning termination signals into checkpointed stops."""

    def __init__(self) -> None:
        self._flagged: str | None = None
        self._previous: dict[int, object] = {}
        self._installed = False

    def _handle(self, signum: int, frame: FrameType | None) -> None:
        name = signal.Signals(signum).name
        if self._flagged is not None:
            raise RunInterruptedError(
                f"second {name} received; aborting without waiting for the "
                f"current shard"
            )
        self._flagged = name

    def __enter__(self) -> "InterruptGuard":
        # Signal handlers can only be installed from the main thread; a
        # runner driven from a worker thread simply runs unguarded.
        if threading.current_thread() is threading.main_thread():
            for signum in _SIGNALS:
                self._previous[signum] = signal.signal(signum, self._handle)
            self._installed = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._installed:
            for signum, previous in self._previous.items():
                signal.signal(signum, previous)
            self._installed = False

    @property
    def interrupted(self) -> bool:
        return self._flagged is not None

    def check(self) -> None:
        """Raise at a shard boundary if a termination signal arrived."""
        if self._flagged is not None:
            raise RunInterruptedError(
                f"received {self._flagged}; completed shards are "
                f"checkpointed — resume with --resume"
            )

    def wait(
        self,
        seconds: float,
        sleep: Callable[[float], None] = time.sleep,
        slice_s: float = BACKOFF_SLICE_S,
    ) -> None:
        """Sleep up to ``seconds``, returning early once a signal is flagged.

        The sleep is sliced so a retry backoff never delays a first
        SIGINT/SIGTERM by more than ``slice_s``; callers still need a
        :meth:`check` (or loop back to one) to turn the flag into the
        exception. ``sleep`` stays injectable for tests that must not
        really block.
        """
        remaining = float(seconds)
        while remaining > 1e-9 and self._flagged is None:
            step = min(slice_s, remaining)
            sleep(step)
            remaining -= step
