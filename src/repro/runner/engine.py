"""The runner itself: execute a shard plan crash-safely under a run dir.

Execution order is the plan's declared shard order, but nothing depends on
it: shards are order-independent by contract, completed shards are skipped
on resume, and the merge always reads every payload back from disk — so an
uninterrupted run and any interrupt/resume chain with the same seed emit
byte-identical results.

``jobs=1`` (the default) is the original serial in-process path,
byte-for-byte unchanged. ``jobs>1`` hands the pending shards to the
supervised worker pool in :mod:`repro.runner.parallel`; checkpointing,
manifest handling, and the merge stay here in the parent either way, and
``jobs`` is deliberately *not* part of the manifest, so any run can be
resumed at any width.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import (
    CheckpointError,
    DeadlineExceededError,
    RunInterruptedError,
    RunnerError,
    ShardExhaustedError,
    ShardTimeoutError,
)
from repro.faults.retry import RetryPolicy
from repro.obs.recorder import get_recorder
from repro.runner.deadline import Deadline, shard_watchdog
from repro.runner.interrupt import InterruptGuard
from repro.runner.shards import ExperimentPlan, set_current_attempt
from repro.runner.store import CheckpointStore, build_manifest, check_resume_compatible

DEFAULT_RETRY_POLICY = RetryPolicy(
    max_attempts=3, backoff_base_ms=100.0, backoff_cap_ms=2000.0
)
"""Shard retries reuse the fault-layer policy; here the backoff is *real*
sleep (the harness lives in wall-clock time, unlike the simulated clients)."""


@dataclass(frozen=True)
class RunnerOptions:
    """Knobs of one runner invocation (all optional)."""

    resume: bool = False
    deadline_s: float | None = None
    shard_deadline_s: float | None = None
    max_shards: int | None = None
    jobs: int = 1
    mp_start_method: str | None = None
    progress_every: int | None = None
    retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise RunnerError(f"--deadline-s must be positive, got {self.deadline_s}")
        if self.shard_deadline_s is not None and self.shard_deadline_s <= 0:
            raise RunnerError(
                f"--shard-deadline-s must be positive, got {self.shard_deadline_s}"
            )
        if self.max_shards is not None and self.max_shards < 1:
            raise RunnerError(f"--max-shards must be >= 1, got {self.max_shards}")
        if self.jobs < 1:
            raise RunnerError(f"--jobs must be >= 1, got {self.jobs}")
        if self.progress_every is not None and self.progress_every < 1:
            raise RunnerError(
                f"--progress-every must be >= 1, got {self.progress_every}"
            )
        valid_methods = (None, "fork", "spawn", "forkserver")
        if self.mp_start_method not in valid_methods:
            raise RunnerError(
                f"mp_start_method must be one of {valid_methods[1:]}, "
                f"got {self.mp_start_method!r}"
            )


@dataclass
class ExperimentRunner:
    """Executes one :class:`ExperimentPlan` under a checkpointed run dir."""

    plan: ExperimentPlan
    run_dir: str
    options: RunnerOptions = field(default_factory=RunnerOptions)

    def execute(self) -> str:
        """Run (or resume) to completion; returns the formatted result.

        Raises :class:`RunInterruptedError`, :class:`DeadlineExceededError`
        or :class:`ShardExhaustedError` on the corresponding early stops;
        in every case all completed shards are already flushed to disk.
        """
        store = CheckpointStore(self.run_dir)
        self._reconcile_manifest(store)
        deadline = Deadline(self.options.deadline_s)
        done = store.completed_shards(self.plan.shard_ids)
        pending = [sid for sid in self.plan.shard_ids if sid not in done]

        rec = get_recorder()
        shard_seconds = self._prior_shard_seconds(store) if rec.enabled else {}
        if rec.enabled and (
            rec.events is None
            or getattr(rec.events, "path", None) != store.events_path
        ):
            # Wire the run event log once per run directory; a resumed run
            # appends its own segment after the interrupted one's.
            from repro.obs.events import EventLog

            rec.events = EventLog(store.events_path)
        rec.event(
            "run_start",
            experiment=self.plan.experiment,
            jobs=self.options.jobs,
            pending=len(pending),
            total=len(self.plan.shard_ids),
            resumed=self.options.resume,
        )

        started = time.perf_counter()
        try:
            with InterruptGuard() as guard:
                if self.options.jobs > 1 and pending:
                    from repro.runner.parallel import execute_pending_parallel

                    execute_pending_parallel(
                        plan=self.plan,
                        store=store,
                        options=self.options,
                        pending=pending,
                        deadline=deadline,
                        guard=guard,
                        already_done=len(done),
                        prior_shard_seconds=shard_seconds,
                    )
                else:
                    self._execute_serial(
                        store, pending, deadline, guard, len(done), shard_seconds
                    )
        except RunInterruptedError as exc:
            rec.event("run_interrupted", detail=str(exc))
            raise
        except DeadlineExceededError as exc:
            rec.event("deadline_exceeded", detail=str(exc))
            raise
        finally:
            if rec.enabled:
                on_disk = sum(1 for _ in store.shard_dir.glob("*.json"))
                print(
                    f"obs: run {self.plan.experiment}: {on_disk}/"
                    f"{len(self.plan.shard_ids)} shards on disk after "
                    f"{time.perf_counter() - started:.2f}s "
                    f"(jobs={self.options.jobs})",
                    file=sys.stderr,
                )

        # Merge strictly from disk so an uninterrupted run and a resumed
        # one traverse the identical bytes.
        payloads = store.completed_shards(self.plan.shard_ids)
        missing = [sid for sid in self.plan.shard_ids if sid not in payloads]
        if missing:
            raise CheckpointError(
                f"checkpoints vanished between write and merge: {missing}"
            )
        with rec.timer("runner.merge"):
            text = self.plan.format(self.plan.merge(payloads))
        store.write_result_text(text)
        # Every shard is verified on disk; any earlier quarantine verdict
        # (a previous parallel run's evidence) is now obsolete.
        store.clear_quarantine_record()
        rec.event("run_completed", shards=len(payloads))
        return text

    def _execute_serial(
        self,
        store: CheckpointStore,
        pending: list[str],
        deadline: Deadline,
        guard: InterruptGuard,
        done_count: int,
        shard_seconds: dict[str, float],
    ) -> None:
        """The original one-process path, byte-for-byte unchanged."""
        rec = get_recorder()
        executed = 0
        for shard_id in pending:
            guard.check()
            deadline.check()
            if (
                self.options.max_shards is not None
                and executed >= self.options.max_shards
            ):
                raise RunInterruptedError(
                    f"stopping after --max-shards={self.options.max_shards} "
                    f"({done_count + executed}/{len(self.plan.shard_ids)} "
                    f"shards on disk); resume with --resume"
                )
            started = time.perf_counter()
            rec.event("shard_assigned", shard=shard_id, worker=0)
            with rec.timer("runner.shard"):
                payload = self._run_shard_with_retry(shard_id, deadline, guard)
            store.write_shard(shard_id, payload)
            executed += 1
            if rec.enabled:
                shard_seconds[shard_id] = round(
                    time.perf_counter() - started, 6
                )
                store.update_manifest_obs({"shard_seconds": shard_seconds})
                rec.event(
                    "shard_completed",
                    shard=shard_id,
                    worker=0,
                    wall_s=shard_seconds[shard_id],
                )
                every = self.options.progress_every
                if every is not None and executed % every == 0:
                    print(
                        f"obs: shard {shard_id} done in "
                        f"{shard_seconds[shard_id]:.2f}s "
                        f"({done_count + executed}/{len(self.plan.shard_ids)} "
                        f"on disk)",
                        file=sys.stderr,
                    )

    @staticmethod
    def _prior_shard_seconds(store: CheckpointStore) -> dict[str, float]:
        """Shard timings a previous (interrupted) instrumented run left in
        the manifest, so a resumed run reports whole-run wall-clock."""
        manifest = store.load_manifest() or {}
        obs = manifest.get("obs")
        if not isinstance(obs, dict):
            return {}
        prior = obs.get("shard_seconds")
        if not isinstance(prior, dict):
            return {}
        return {
            str(sid): float(sec)
            for sid, sec in prior.items()
            if isinstance(sec, (int, float))
        }

    def _reconcile_manifest(self, store: CheckpointStore) -> None:
        manifest = build_manifest(self.plan)
        existing = store.load_manifest()
        if existing is None:
            store.write_manifest(manifest)
        elif not self.options.resume:
            raise RunnerError(
                f"run directory {store.run_dir} already holds a "
                f"{existing.get('experiment', '?')} run; pass --resume to "
                f"continue it or choose a fresh --out-dir"
            )
        else:
            check_resume_compatible(existing, manifest)

    def _run_shard_with_retry(
        self, shard_id: str, deadline: Deadline, guard: InterruptGuard
    ) -> Any:
        policy = self.options.retry_policy
        last_error: Exception | None = None
        for attempt in range(1, policy.max_attempts + 1):
            guard.check()
            deadline.check()
            set_current_attempt(attempt)
            try:
                with shard_watchdog(shard_id, self.options.shard_deadline_s, deadline):
                    return self.plan.run_shard(shard_id)
            except (DeadlineExceededError, RunInterruptedError):
                raise  # terminal: budget spent / operator asked to stop
            except ShardTimeoutError as exc:
                last_error = exc  # hung once; worth another attempt
            except Exception as exc:  # noqa: BLE001 - retry any shard failure
                last_error = exc
            finally:
                set_current_attempt(None)
            get_recorder().event(
                "shard_retried",
                shard=shard_id,
                attempt=attempt,
                kind=type(last_error).__name__,
                detail=str(last_error),
            )
            if attempt < policy.max_attempts:
                # Sliced wait: a first SIGINT during backoff is noticed
                # within one slice, and the loop's guard.check() turns it
                # into a prompt, checkpointed exit.
                guard.wait(
                    policy.backoff_ms(attempt) / 1000.0, self.options.sleep
                )
        raise ShardExhaustedError(
            f"shard {shard_id!r} failed {policy.max_attempts} attempt(s); "
            f"last error: {last_error}"
        ) from last_error
