"""Self-chaos harness: deterministic failure injection against the runner.

The fault layer (:mod:`repro.faults`) breaks the *simulated* constellation;
this module breaks the *runner itself*. It wraps any registered experiment
plan so that chosen shards fail in a chosen way on chosen attempts — the
worst behaviours real workers exhibit:

``raise``
    an ordinary exception (picklable, reported over the pipe);
``crash``
    ``os._exit(70)`` — the process vanishes mid-shard with a nonzero exit
    code and no exception, like a segfault or an unpicklable error;
``kill``
    ``SIGKILL`` to itself — the OOM-killer case (exit code 137 as a shell
    sees it, ``-9`` as :mod:`multiprocessing` reports it);
``hang``
    sleeps far past any sane ``--shard-deadline-s``, the wedged-worker
    case only a parent-side watchdog can recover from;
``garbage``
    returns a payload that pickles over the pipe but is not
    JSON-serialisable, so only the parent-side checkpoint validation can
    reject it.

Failures are scheduled on the runner's *attempt* counter (via
:func:`~repro.runner.shards.current_attempt`), which survives worker
replacement — so ``{"epoch-0001": {"1": "crash"}}`` crashes the first
attempt wherever it lands and lets the retry succeed, deterministically,
regardless of worker scheduling. The wrapper keeps the inner plan's shard
ids, merge, and format, so a chaos run that survives its injected failures
produces output byte-identical to the clean run.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Mapping

from repro.errors import RunnerError
from repro.runner.shards import ExperimentPlan, current_attempt

CHAOS_MODES = ("raise", "crash", "kill", "hang", "garbage")
CRASH_EXIT_CODE = 70
"""Exit code of the ``crash`` mode (distinct from every runner exit code)."""


def build_plan(
    inner: Mapping[str, Any],
    failures: Mapping[str, Mapping[Any, str]],
    hang_s: float = 3600.0,
) -> ExperimentPlan:
    """Wrap the plan described by ``inner`` (a plan config) with scheduled
    failures: ``failures[shard_id][attempt] = mode``.

    Attempt keys may be ints or strings (JSON object keys are strings);
    they are normalised to strings so the config round-trips exactly.
    """
    from repro.runner.registry import plan_from_config

    base = plan_from_config(dict(inner))
    schedule: dict[str, dict[str, str]] = {}
    for shard_id, per_attempt in failures.items():
        if shard_id not in base.shard_ids:
            raise RunnerError(
                f"selfchaos: {shard_id!r} is not a shard of "
                f"{base.experiment!r}"
            )
        for attempt, mode in per_attempt.items():
            if mode not in CHAOS_MODES:
                raise RunnerError(
                    f"selfchaos: unknown failure mode {mode!r} "
                    f"(choose from {CHAOS_MODES})"
                )
            schedule.setdefault(str(shard_id), {})[str(attempt)] = mode

    def run_shard(shard_id: str) -> Any:
        attempt = current_attempt()
        mode = schedule.get(shard_id, {}).get(str(attempt))
        if mode == "raise":
            raise RuntimeError(
                f"selfchaos: scheduled exception on {shard_id} "
                f"attempt {attempt}"
            )
        if mode == "crash":
            os._exit(CRASH_EXIT_CODE)
        if mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if mode == "hang":
            time.sleep(hang_s)
        if mode == "garbage":
            # A set pickles fine (crosses the worker pipe) but has no JSON
            # encoding — exactly the shape parent-side validation exists for.
            return {"selfchaos": {"unserialisable", "payload"}}
        return base.run_shard(shard_id)

    return ExperimentPlan(
        experiment="selfchaos",
        config={
            "experiment": "selfchaos",
            "inner": dict(inner),
            "failures": schedule,
            "hang_s": hang_s,
        },
        shard_ids=base.shard_ids,
        run_shard=run_shard,
        merge=base.merge,
        format=base.format,
    )
