"""Command-line interface: regenerate paper artifacts and export datasets.

Usage::

    python -m repro list
    python -m repro run table1 --seed 7 --tests-per-city 30
    python -m repro run figure7 --users 20 --epochs 5
    python -m repro run figure8 --out-dir runs/f8 --resume --deadline-s 600
    python -m repro run chaos --obs --out-dir runs/chaos
    python -m repro obs summarize runs/chaos/obs-trace.jsonl
    python -m repro obs events runs/chaos/events.jsonl
    python -m repro obs diff BENCH_old.json BENCH_new.json --threshold 20
    python -m repro obs timeline runs/chaos/obs-timeseries.json
    python -m repro obs slo runs/chaos/obs-timeseries.json \
        --slo "availability >= 99% over 5 epochs" --slo "p99 <= 300ms"
    python -m repro aim --seed 7 --tests-per-city 30 --format csv --out aim.csv

Without ``--out-dir`` an experiment runs monolithically in memory, exactly
as it always has. With ``--out-dir`` it runs through the crash-safe
:mod:`repro.runner`: sharded, checkpointed, resumable with ``--resume``,
and bounded by ``--deadline-s`` / ``--shard-deadline-s``. ``--jobs N``
executes the shards N-wide on a supervised worker pool that survives
worker crashes, hangs, and kills; ``--jobs`` never enters the manifest,
so a run started wide can resume serially (and vice versa) byte-for-byte.

Observability is off by default and the default path is byte-identical to
an uninstrumented run. ``--obs`` (or any of ``--metrics-out`` /
``--trace-out`` / ``--timeseries-out``) installs a live :mod:`repro.obs`
recorder for the run and flushes a Prometheus metrics file, a JSONL
serve-path trace, and a windowed time-series document on exit — including
interrupted exits, through the same atomic-write path as the checkpoints,
so the artifacts are never truncated. ``repro obs timeline`` renders the
time-series document as an ASCII sparkline dashboard; ``repro obs slo``
evaluates declarative SLOs over it with error-budget burn rates.

Exit codes: 0 success; 2 generic error; 3 content unavailable; 4 bad
fault/experiment configuration; 5 interrupted (checkpoints flushed);
6 deadline exceeded; 7 a shard exhausted its retries (serial);
8 shard(s) quarantined by the parallel executor (rest of the run
completed; see ``quarantine.json``); 9 benchmark regression detected by
``repro obs diff``; 10 a request was shed by overload protection
(admission control, an open circuit breaker, or a deadline budget);
11 at least one SLO breached in ``repro obs slo``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.errors import (
    DeadlineExceededError,
    FaultConfigError,
    OverloadedError,
    ReproError,
    RunInterruptedError,
    ShardExhaustedError,
    ShardQuarantinedError,
    UnavailableError,
)

EXIT_ERROR = 2
"""Generic :class:`~repro.errors.ReproError` exit code."""
EXIT_UNAVAILABLE = 3
"""Content was unreachable under the active fault state."""
EXIT_FAULT_CONFIG = 4
"""A fault schedule / retry policy was configured inconsistently."""
EXIT_INTERRUPTED = 5
"""The run stopped on SIGINT/SIGTERM (or ``--max-shards``) after flushing
every completed shard; rerun with ``--resume`` to continue."""
EXIT_DEADLINE = 6
"""The ``--deadline-s`` wall-clock budget expired; completed shards are
checkpointed."""
EXIT_SHARD_FAILED = 7
"""One shard kept failing after exhausting its retry budget."""
EXIT_QUARANTINED = 8
"""Parallel run: shard(s) kept crashing/hanging/failing their workers and
were quarantined (``quarantine.json``) while every other shard completed;
fix the cause and rerun with ``--resume``."""
EXIT_REGRESSION = 9
"""``repro obs diff`` found at least one benchmark metric past its budget
(the CI bench-regression gate keys off this)."""
EXIT_OVERLOADED = 10
"""A request was shed by overload protection: admission control refused
it, its circuit breaker was open, or its deadline budget ran out."""
EXIT_SLO_BREACH = 11
"""``repro obs slo`` found at least one objective breached (the CI SLO
smoke job keys off this; distinct from exit 2 so a malformed spec or a
missing artifact can never masquerade as a clean evaluation)."""

_EXPERIMENTS: dict[str, str] = {
    "chaos": "Chaos sweep: availability and latency under injected failures",
    "table1": "Table 1: distance to best CDN / minRTT per country",
    "figure2": "Fig. 2: per-country median RTT delta (Starlink - terrestrial)",
    "figure3": "Fig. 3: Maputo case study",
    "figure4": "Fig. 4: HTTP response-time difference per country",
    "figure5": "Fig. 5: first contentful paint (DE, GB)",
    "figure7": "Fig. 7: SpaceCDN latency CDFs vs AIM baselines",
    "figure8": "Fig. 8: duty-cycled SpaceCDN latency",
    "geoblocking": "§2 claim: home-content geo-blocking prevalence over Starlink",
    "overload": "Overload sweep: availability/shedding vs offered-load multiplier",
}


def _parse_fractions(text: str) -> tuple[float, ...]:
    """Validate ``--fractions`` eagerly, before any experiment work runs."""
    fractions = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            value = float(token)
        except ValueError:
            raise FaultConfigError(
                f"--fractions expects comma-separated numbers, got {token!r}"
            ) from None
        if not 0.0 <= value <= 1.0:
            raise FaultConfigError(
                f"--fractions values must be within [0, 1], got {value:g}"
            )
        fractions.append(value)
    if not fractions:
        raise FaultConfigError(
            f"--fractions needs at least one value, got {text!r}"
        )
    return tuple(fractions)


def _parse_loads(text: str) -> tuple[float, ...]:
    """Validate ``--loads`` eagerly, before any experiment work runs."""
    loads = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            value = float(token)
        except ValueError:
            raise FaultConfigError(
                f"--loads expects comma-separated numbers, got {token!r}"
            ) from None
        if value <= 0.0:
            raise FaultConfigError(
                f"--loads multipliers must be positive, got {value:g}"
            )
        loads.append(value)
    if not loads:
        raise FaultConfigError(f"--loads needs at least one value, got {text!r}")
    return tuple(loads)


def _parse_flash_crowd(spec: str | None):
    """Validate ``--flash-crowd START:END:EXTRA`` eagerly (exit 4 on error)."""
    if spec is None:
        return None
    from repro.experiments import overload

    return overload.parse_flash_crowd(spec)


def _run_experiment(name: str, args: argparse.Namespace) -> str:
    from repro.experiments import (  # local import keeps --help fast
        chaos,
        figure2,
        figure3,
        figure4,
        figure5,
        figure7,
        figure8,
        geoblocking,
        overload,
        table1,
    )

    modules = {
        "chaos": lambda: chaos.format_result(
            chaos.run(
                seed=args.seed,
                num_requests=args.requests,
                fractions=_parse_fractions(args.fractions),
                shell=args.shell,
                max_attempts=args.max_attempts,
                batch=args.batch,
            )
        ),
        "table1": lambda: table1.format_result(
            table1.run(seed=args.seed, tests_per_city=args.tests_per_city)
        ),
        "figure2": lambda: figure2.format_result(
            figure2.run(seed=args.seed, tests_per_city=args.tests_per_city)
        ),
        "figure3": lambda: figure3.format_result(
            figure3.run(seed=args.seed, samples_per_site=args.samples)
        ),
        "figure4": lambda: figure4.format_result(
            figure4.run(seed=args.seed, rounds=args.rounds)
        ),
        "figure5": lambda: figure5.format_result(
            figure5.run(seed=args.seed, rounds=args.rounds)
        ),
        "figure7": lambda: figure7.format_result(
            figure7.run(
                seed=args.seed,
                users_per_epoch=args.users,
                num_epochs=args.epochs,
                batch=args.batch,
            )
        ),
        "figure8": lambda: figure8.format_result(
            figure8.run(
                seed=args.seed,
                users_per_epoch=args.users,
                num_epochs=args.epochs,
                batch=args.batch,
            )
        ),
        "geoblocking": lambda: geoblocking.format_result(geoblocking.run()),
        "overload": lambda: overload.format_result(
            overload.run(
                seed=args.seed,
                num_requests=args.requests,
                loads=_parse_loads(args.loads),
                shell=args.shell,
                capacity=args.capacity,
                ground_capacity=args.ground_capacity,
                deadline_ms=args.deadline_ms if args.deadline_ms > 0 else None,
                flash_crowd=_parse_flash_crowd(args.flash_crowd),
                max_attempts=args.max_attempts,
                batch=args.batch,
            )
        ),
    }
    runner: Callable[[], str] | None = modules.get(name)
    if runner is None:
        raise ReproError(
            f"unknown experiment {name!r}; choose from {sorted(_EXPERIMENTS)}"
        )
    return runner()


def _build_plan(name: str, args: argparse.Namespace):
    """The sharded plan equivalent of :func:`_run_experiment`."""
    from repro.experiments import (
        chaos,
        figure2,
        figure3,
        figure4,
        figure5,
        figure7,
        figure8,
        geoblocking,
        overload,
        table1,
    )

    builders = {
        "chaos": lambda: chaos.build_plan(
            seed=args.seed,
            num_requests=args.requests,
            fractions=_parse_fractions(args.fractions),
            shell=args.shell,
            max_attempts=args.max_attempts,
            batch=args.batch,
        ),
        "table1": lambda: table1.build_plan(
            seed=args.seed, tests_per_city=args.tests_per_city
        ),
        "figure2": lambda: figure2.build_plan(
            seed=args.seed, tests_per_city=args.tests_per_city
        ),
        "figure3": lambda: figure3.build_plan(
            seed=args.seed, samples_per_site=args.samples
        ),
        "figure4": lambda: figure4.build_plan(seed=args.seed, rounds=args.rounds),
        "figure5": lambda: figure5.build_plan(seed=args.seed, rounds=args.rounds),
        "figure7": lambda: figure7.build_plan(
            seed=args.seed,
            users_per_epoch=args.users,
            num_epochs=args.epochs,
            batch=args.batch,
        ),
        "figure8": lambda: figure8.build_plan(
            seed=args.seed,
            users_per_epoch=args.users,
            num_epochs=args.epochs,
            batch=args.batch,
        ),
        "geoblocking": lambda: geoblocking.build_plan(),
        "overload": lambda: overload.build_plan(
            seed=args.seed,
            num_requests=args.requests,
            loads=_parse_loads(args.loads),
            shell=args.shell,
            capacity=args.capacity,
            ground_capacity=args.ground_capacity,
            deadline_ms=args.deadline_ms if args.deadline_ms > 0 else None,
            flash_crowd=_parse_flash_crowd(args.flash_crowd),
            max_attempts=args.max_attempts,
            batch=args.batch,
        ),
    }
    builder = builders.get(name)
    if builder is None:
        raise ReproError(
            f"unknown experiment {name!r}; choose from {sorted(_EXPERIMENTS)}"
        )
    return builder()


def _cmd_list(_: argparse.Namespace) -> int:
    for name, description in _EXPERIMENTS.items():
        print(f"{name:10s} {description}")
    return 0


def _run_and_print(args: argparse.Namespace) -> int:
    if args.out_dir is None:
        for flag, value in (
            ("--resume", args.resume),
            ("--deadline-s", args.deadline_s),
            ("--shard-deadline-s", args.shard_deadline_s),
            ("--max-shards", args.max_shards),
            ("--jobs", args.jobs if args.jobs != 1 else None),
            ("--progress-every", args.progress_every),
        ):
            if value:
                raise ReproError(f"{flag} requires --out-dir")
        # The original monolithic in-memory path, byte-identical.
        print(_run_experiment(args.experiment, args))
        return 0

    from repro.runner import ExperimentRunner, RunnerOptions

    runner = ExperimentRunner(
        plan=_build_plan(args.experiment, args),
        run_dir=args.out_dir,
        options=RunnerOptions(
            resume=args.resume,
            deadline_s=args.deadline_s,
            shard_deadline_s=args.shard_deadline_s,
            max_shards=args.max_shards,
            jobs=args.jobs,
            progress_every=args.progress_every,
        ),
    )
    print(runner.execute())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    obs_requested = (
        args.obs
        or args.metrics_out is not None
        or args.trace_out is not None
        or args.timeseries_out is not None
    )
    if not obs_requested:
        # Observability fully off: the process-global recorder stays the
        # no-op singleton and every output is byte-identical to the
        # pre-obs code paths.
        return _run_and_print(args)

    from pathlib import Path

    from repro.obs import ObsRecorder, recording

    # --obs writes all three artifacts (next to the run with --out-dir,
    # else in the CWD); a bare --metrics-out / --trace-out /
    # --timeseries-out writes only what was asked for, so
    # `--metrics-out m.prom` never drops a trace file in CWD.
    base = Path(args.out_dir) if args.out_dir is not None else Path(".")
    metrics_path = None
    if args.metrics_out:
        metrics_path = Path(args.metrics_out)
    elif args.obs:
        metrics_path = base / "obs-metrics.prom"
    trace_path = None
    if args.trace_out:
        trace_path = Path(args.trace_out)
    elif args.obs:
        trace_path = base / "obs-trace.jsonl"
    timeseries_path = None
    if args.timeseries_out:
        timeseries_path = Path(args.timeseries_out)
    elif args.obs:
        timeseries_path = base / "obs-timeseries.json"
    recorder = ObsRecorder()
    try:
        with recording(recorder):
            return _run_and_print(args)
    finally:
        # Runs on every exit — success, SIGINT/--max-shards interruption,
        # deadline — through the same tmp+fsync+rename path as the shard
        # checkpoints: the artifacts are complete or absent, never torn.
        for path in (metrics_path, trace_path, timeseries_path):
            if path is not None:
                path.parent.mkdir(parents=True, exist_ok=True)
        recorder.flush(
            metrics_path=metrics_path,
            trace_path=trace_path,
            timeseries_path=timeseries_path,
        )
        written = [
            f"{kind} -> {path}"
            for kind, path in (
                ("metrics", metrics_path),
                ("trace", trace_path),
                ("timeseries", timeseries_path),
            )
            if path is not None
        ]
        print("obs: " + "; ".join(written), file=sys.stderr)


def _cmd_obs_summarize(args: argparse.Namespace) -> int:
    from repro.obs import summarize_trace_file

    print(summarize_trace_file(args.trace))
    return 0


def _cmd_obs_events(args: argparse.Namespace) -> int:
    from repro.obs import render_events_file

    print(render_events_file(args.events))
    return 0


def _parse_metric_overrides(pairs: list[str]) -> dict[str, float]:
    """Validate repeated ``--metric path=pct`` overrides eagerly."""
    from repro.errors import ObsError

    overrides: dict[str, float] = {}
    for pair in pairs:
        path, separator, raw = pair.partition("=")
        if not separator or not path:
            raise ObsError(
                f"--metric expects dotted.path=percent, got {pair!r}"
            )
        try:
            overrides[path] = float(raw)
        except ValueError:
            raise ObsError(
                f"--metric {path}= expects a numeric percent, got {raw!r}"
            ) from None
    return overrides


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.obs import diff_benchmark_files, format_diff, has_regressions

    diffs = diff_benchmark_files(
        args.old,
        args.new,
        threshold_pct=args.threshold,
        per_metric=_parse_metric_overrides(args.metric),
    )
    print(format_diff(diffs))
    return EXIT_REGRESSION if has_regressions(diffs) else 0


def _cmd_obs_slo(args: argparse.Namespace) -> int:
    from repro.obs import evaluate_slos, parse_slo, read_timeseries, render_slo_report

    doc = read_timeseries(args.timeseries)
    specs = [parse_slo(text) for text in args.slo]
    reports = evaluate_slos(doc, specs)
    print(render_slo_report(reports, float(doc.get("window_s", 0.0))))
    return EXIT_SLO_BREACH if any(r.breached for r in reports) else 0


def _cmd_obs_timeline(args: argparse.Namespace) -> int:
    from repro.obs import (
        evaluate_slos,
        parse_slo,
        read_timeseries,
        render_timeline,
    )

    doc = read_timeseries(args.timeseries)
    reports = evaluate_slos(doc, [parse_slo(text) for text in args.slo])
    print(render_timeline(doc, reports, width=args.width))
    return 0


def _cmd_aim(args: argparse.Namespace) -> int:
    from repro.measurements.aim import AimGenerator
    from repro.measurements.export import write_aim_csv, write_aim_json

    dataset = AimGenerator(seed=args.seed).generate(tests_per_city=args.tests_per_city)
    if args.format == "csv":
        count = write_aim_csv(dataset, args.out)
    else:
        count = write_aim_json(dataset, args.out)
    print(f"wrote {count} speed tests to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpaceCDN reproduction: regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list reproducible experiments")
    list_cmd.set_defaults(func=_cmd_list)

    run_cmd = sub.add_parser("run", help="run one experiment and print its rows")
    run_cmd.add_argument("experiment", choices=sorted(_EXPERIMENTS))
    run_cmd.add_argument("--seed", type=int, default=7)
    run_cmd.add_argument("--tests-per-city", type=int, default=30)
    run_cmd.add_argument("--samples", type=int, default=25)
    run_cmd.add_argument("--rounds", type=int, default=3)
    run_cmd.add_argument("--users", type=int, default=20)
    run_cmd.add_argument("--epochs", type=int, default=5)
    run_cmd.add_argument("--requests", type=int, default=150)
    run_cmd.add_argument(
        "--fractions",
        default="0.0,0.1,0.3",
        help="comma-separated failure fractions for the chaos sweep",
    )
    run_cmd.add_argument(
        "--shell",
        choices=("shell1", "small"),
        default="shell1",
        help="constellation for the chaos/overload sweeps (small = 6x8 smoke shell)",
    )
    run_cmd.add_argument("--max-attempts", type=int, default=3)
    run_cmd.add_argument(
        "--loads",
        default="0.5,1.0,2.0,4.0",
        help="comma-separated offered-load multipliers for the overload sweep",
    )
    run_cmd.add_argument(
        "--flash-crowd",
        default=None,
        metavar="START:END:EXTRA",
        help="inject a flash crowd into the overload sweep: EXTRA background "
        "requests per slot on every satellite between START and END seconds",
    )
    run_cmd.add_argument(
        "--capacity",
        type=float,
        default=6.0,
        help="per-satellite sustainable requests per slot (overload sweep)",
    )
    run_cmd.add_argument(
        "--ground-capacity",
        type=float,
        default=40.0,
        help="ground-tier sustainable requests per slot (overload sweep)",
    )
    run_cmd.add_argument(
        "--deadline-ms",
        type=float,
        default=1500.0,
        help="end-to-end deadline budget per request in the overload sweep; "
        "0 disables deadline enforcement",
    )
    run_cmd.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve request cohorts through the vectorised batch path; "
        "--no-batch keeps the scalar reference ladder one flag away for "
        "debugging (chaos/figure7/figure8; recorded in the run manifest)",
    )
    run_cmd.add_argument(
        "--out-dir",
        default=None,
        help="run crash-safely under this directory: sharded execution with "
        "atomic per-shard checkpoints, a manifest, and result.txt",
    )
    run_cmd.add_argument(
        "--resume",
        action="store_true",
        help="continue a previous --out-dir run, skipping completed shards "
        "(refused if the directory's manifest does not match this invocation)",
    )
    run_cmd.add_argument(
        "--deadline-s",
        type=float,
        default=None,
        help=f"whole-run wall-clock budget in seconds "
        f"(exit {EXIT_DEADLINE} when exceeded)",
    )
    run_cmd.add_argument(
        "--shard-deadline-s",
        type=float,
        default=None,
        help=f"per-shard wall-clock budget in seconds; a shard that hangs "
        f"past it is retried, then exit {EXIT_SHARD_FAILED}",
    )
    run_cmd.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=f"run shards on N supervised worker processes (requires "
        f"--out-dir); crashed, hung, or killed workers are detected and "
        f"their shards retried on fresh workers, repeat offenders are "
        f"quarantined (exit {EXIT_QUARANTINED}) while the rest of the run "
        f"completes; default 1 = the serial in-process path",
    )
    run_cmd.add_argument(
        "--max-shards",
        type=int,
        default=None,
        help=f"stop (exit {EXIT_INTERRUPTED}) after completing this many "
        f"shards; useful for budgeted, incremental runs",
    )
    run_cmd.add_argument(
        "--progress-every",
        type=int,
        default=None,
        metavar="N",
        help="print an obs progress line every N completed shards (requires "
        "--out-dir); default: quiet per-shard, one final summary line",
    )
    run_cmd.add_argument(
        "--obs",
        action="store_true",
        help="record metrics, a serve-path trace, and kernel profiles for "
        "this run (off by default; the default path is byte-identical)",
    )
    run_cmd.add_argument(
        "--metrics-out",
        default=None,
        help="write Prometheus-text metrics here (implies --obs; default "
        "obs-metrics.prom, under --out-dir when given)",
    )
    run_cmd.add_argument(
        "--trace-out",
        default=None,
        help="write the JSONL serve-path trace here (implies --obs; default "
        "obs-trace.jsonl, under --out-dir when given)",
    )
    run_cmd.add_argument(
        "--timeseries-out",
        default=None,
        help="write the windowed time-series JSON here (implies --obs; "
        "default obs-timeseries.json, under --out-dir when given); feed it "
        "to `repro obs timeline` / `repro obs slo`",
    )
    run_cmd.set_defaults(func=_cmd_run)

    obs_cmd = sub.add_parser(
        "obs", help="inspect observability artifacts from an --obs run"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    summarize_cmd = obs_sub.add_parser(
        "summarize",
        help="render per-tier serving and ladder-attempt tables from a trace",
    )
    summarize_cmd.add_argument("trace", help="path to an obs-trace.jsonl file")
    summarize_cmd.set_defaults(func=_cmd_obs_summarize)
    events_cmd = obs_sub.add_parser(
        "events",
        help="render a run event log as a timeline and per-shard wall-time table",
    )
    events_cmd.add_argument("events", help="path to a run's events.jsonl file")
    events_cmd.set_defaults(func=_cmd_obs_events)
    diff_cmd = obs_sub.add_parser(
        "diff",
        help=f"compare two BENCH_*.json files and exit {EXIT_REGRESSION} on "
        f"a performance regression",
    )
    diff_cmd.add_argument("old", help="baseline benchmark JSON (committed)")
    diff_cmd.add_argument("new", help="freshly measured benchmark JSON")
    diff_cmd.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        metavar="PCT",
        help="allowed adverse change per metric, in percent (default 20)",
    )
    diff_cmd.add_argument(
        "--metric",
        action="append",
        default=[],
        metavar="PATH=PCT",
        help="per-metric threshold override (repeatable), e.g. "
        "--metric healthy.requests_per_min=10",
    )
    diff_cmd.set_defaults(func=_cmd_obs_diff)
    slo_cmd = obs_sub.add_parser(
        "slo",
        help=f"evaluate SLOs with error-budget burn rates over a windowed "
        f"time series; exit {EXIT_SLO_BREACH} when any objective breaches",
    )
    slo_cmd.add_argument(
        "timeseries", help="path to an obs-timeseries.json file"
    )
    slo_cmd.add_argument(
        "--slo",
        action="append",
        required=True,
        metavar="SPEC",
        help="an objective (repeatable), e.g. 'availability >= 99%% over "
        "5 epochs', 'p99 <= 150ms', 'shed_fraction <= 5%%', "
        "'hit_ratio >= 80%%'",
    )
    slo_cmd.set_defaults(func=_cmd_obs_slo)
    timeline_cmd = obs_sub.add_parser(
        "timeline",
        help="render the windowed time series as an ASCII sparkline "
        "dashboard (one row per metric, optional SLO breach markers)",
    )
    timeline_cmd.add_argument(
        "timeseries", help="path to an obs-timeseries.json file"
    )
    timeline_cmd.add_argument(
        "--slo",
        action="append",
        default=[],
        metavar="SPEC",
        help="overlay SLO breach markers (repeatable, same grammar as "
        "`repro obs slo`)",
    )
    timeline_cmd.add_argument(
        "--width",
        type=int,
        default=60,
        metavar="COLS",
        help="maximum sparkline columns; denser series mean-pool (default 60)",
    )
    timeline_cmd.set_defaults(func=_cmd_obs_timeline)

    aim_cmd = sub.add_parser("aim", help="generate and export the synthetic AIM dataset")
    aim_cmd.add_argument("--seed", type=int, default=7)
    aim_cmd.add_argument("--tests-per-city", type=int, default=30)
    aim_cmd.add_argument("--format", choices=("csv", "json"), default="csv")
    aim_cmd.add_argument("--out", required=True)
    aim_cmd.set_defaults(func=_cmd_aim)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except RunInterruptedError as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except DeadlineExceededError as exc:
        print(f"deadline: {exc}", file=sys.stderr)
        return EXIT_DEADLINE
    except ShardExhaustedError as exc:
        print(f"error: shard failed: {exc}", file=sys.stderr)
        return EXIT_SHARD_FAILED
    except ShardQuarantinedError as exc:
        print(f"error: shard(s) quarantined: {exc}", file=sys.stderr)
        return EXIT_QUARANTINED
    except OverloadedError as exc:
        print(f"error: request shed under overload: {exc}", file=sys.stderr)
        return EXIT_OVERLOADED
    except UnavailableError as exc:
        print(f"error: content unavailable: {exc}", file=sys.stderr)
        return EXIT_UNAVAILABLE
    except FaultConfigError as exc:
        print(f"error: bad fault configuration: {exc}", file=sys.stderr)
        return EXIT_FAULT_CONFIG
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
