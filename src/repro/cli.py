"""Command-line interface: regenerate paper artifacts and export datasets.

Usage::

    python -m repro list
    python -m repro run table1 --seed 7 --tests-per-city 30
    python -m repro run figure7 --users 20 --epochs 5
    python -m repro aim --seed 7 --tests-per-city 30 --format csv --out aim.csv
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.errors import FaultConfigError, ReproError, UnavailableError

EXIT_ERROR = 2
"""Generic :class:`~repro.errors.ReproError` exit code."""
EXIT_UNAVAILABLE = 3
"""Content was unreachable under the active fault state."""
EXIT_FAULT_CONFIG = 4
"""A fault schedule / retry policy was configured inconsistently."""

_EXPERIMENTS: dict[str, str] = {
    "chaos": "Chaos sweep: availability and latency under injected failures",
    "table1": "Table 1: distance to best CDN / minRTT per country",
    "figure2": "Fig. 2: per-country median RTT delta (Starlink - terrestrial)",
    "figure3": "Fig. 3: Maputo case study",
    "figure4": "Fig. 4: HTTP response-time difference per country",
    "figure5": "Fig. 5: first contentful paint (DE, GB)",
    "figure7": "Fig. 7: SpaceCDN latency CDFs vs AIM baselines",
    "figure8": "Fig. 8: duty-cycled SpaceCDN latency",
    "geoblocking": "§2 claim: home-content geo-blocking prevalence over Starlink",
}


def _run_experiment(name: str, args: argparse.Namespace) -> str:
    from repro.experiments import (  # local import keeps --help fast
        chaos,
        figure2,
        figure3,
        figure4,
        figure5,
        figure7,
        figure8,
        geoblocking,
        table1,
    )

    modules = {
        "chaos": lambda: chaos.format_result(
            chaos.run(
                seed=args.seed,
                num_requests=args.requests,
                fractions=tuple(
                    float(f) for f in args.fractions.split(",") if f
                ),
                shell=args.shell,
                max_attempts=args.max_attempts,
            )
        ),
        "table1": lambda: table1.format_result(
            table1.run(seed=args.seed, tests_per_city=args.tests_per_city)
        ),
        "figure2": lambda: figure2.format_result(
            figure2.run(seed=args.seed, tests_per_city=args.tests_per_city)
        ),
        "figure3": lambda: figure3.format_result(
            figure3.run(seed=args.seed, samples_per_site=args.samples)
        ),
        "figure4": lambda: figure4.format_result(
            figure4.run(seed=args.seed, rounds=args.rounds)
        ),
        "figure5": lambda: figure5.format_result(
            figure5.run(seed=args.seed, rounds=args.rounds)
        ),
        "figure7": lambda: figure7.format_result(
            figure7.run(seed=args.seed, users_per_epoch=args.users, num_epochs=args.epochs)
        ),
        "figure8": lambda: figure8.format_result(
            figure8.run(seed=args.seed, users_per_epoch=args.users, num_epochs=args.epochs)
        ),
        "geoblocking": lambda: geoblocking.format_result(geoblocking.run()),
    }
    runner: Callable[[], str] | None = modules.get(name)
    if runner is None:
        raise ReproError(
            f"unknown experiment {name!r}; choose from {sorted(_EXPERIMENTS)}"
        )
    return runner()


def _cmd_list(_: argparse.Namespace) -> int:
    for name, description in _EXPERIMENTS.items():
        print(f"{name:10s} {description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    print(_run_experiment(args.experiment, args))
    return 0


def _cmd_aim(args: argparse.Namespace) -> int:
    from repro.measurements.aim import AimGenerator
    from repro.measurements.export import write_aim_csv, write_aim_json

    dataset = AimGenerator(seed=args.seed).generate(tests_per_city=args.tests_per_city)
    if args.format == "csv":
        count = write_aim_csv(dataset, args.out)
    else:
        count = write_aim_json(dataset, args.out)
    print(f"wrote {count} speed tests to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpaceCDN reproduction: regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list reproducible experiments")
    list_cmd.set_defaults(func=_cmd_list)

    run_cmd = sub.add_parser("run", help="run one experiment and print its rows")
    run_cmd.add_argument("experiment", choices=sorted(_EXPERIMENTS))
    run_cmd.add_argument("--seed", type=int, default=7)
    run_cmd.add_argument("--tests-per-city", type=int, default=30)
    run_cmd.add_argument("--samples", type=int, default=25)
    run_cmd.add_argument("--rounds", type=int, default=3)
    run_cmd.add_argument("--users", type=int, default=20)
    run_cmd.add_argument("--epochs", type=int, default=5)
    run_cmd.add_argument("--requests", type=int, default=150)
    run_cmd.add_argument(
        "--fractions",
        default="0.0,0.1,0.3",
        help="comma-separated failure fractions for the chaos sweep",
    )
    run_cmd.add_argument(
        "--shell",
        choices=("shell1", "small"),
        default="shell1",
        help="constellation for the chaos sweep (small = 6x8 smoke shell)",
    )
    run_cmd.add_argument("--max-attempts", type=int, default=3)
    run_cmd.set_defaults(func=_cmd_run)

    aim_cmd = sub.add_parser("aim", help="generate and export the synthetic AIM dataset")
    aim_cmd.add_argument("--seed", type=int, default=7)
    aim_cmd.add_argument("--tests-per-city", type=int, default=30)
    aim_cmd.add_argument("--format", choices=("csv", "json"), default="csv")
    aim_cmd.add_argument("--out", required=True)
    aim_cmd.set_defaults(func=_cmd_aim)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except UnavailableError as exc:
        print(f"error: content unavailable: {exc}", file=sys.stderr)
        return EXIT_UNAVAILABLE
    except FaultConfigError as exc:
        print(f"error: bad fault configuration: {exc}", file=sys.stderr)
        return EXIT_FAULT_CONFIG
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
