"""Simulation utilities: clocks, epoch samplers, seeded RNG streams."""

from repro.simulation.clock import SimulationClock
from repro.simulation.sampler import EpochSampler, seeded_rng, user_sample_points

__all__ = ["SimulationClock", "EpochSampler", "seeded_rng", "user_sample_points"]
