"""A monotonic simulated clock shared by simulation components."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class SimulationClock:
    """Simulated wall time in seconds since the experiment epoch."""

    now_s: float = 0.0

    def advance(self, dt_s: float) -> float:
        """Move time forward by ``dt_s``; returns the new time."""
        if dt_s < 0:
            raise ConfigurationError(f"cannot advance by negative dt: {dt_s}")
        self.now_s += dt_s
        return self.now_s

    def advance_to(self, t_s: float) -> float:
        """Jump to an absolute time that must not be in the past."""
        if t_s < self.now_s:
            raise ConfigurationError(
                f"clock cannot move backwards: {t_s} < {self.now_s}"
            )
        self.now_s = t_s
        return self.now_s

    def ticks(self, duration_s: float, step_s: float) -> list[float]:
        """The instants ``now, now+step, ...`` covering ``duration_s``.

        Does not advance the clock; purely a schedule helper.
        """
        if duration_s <= 0 or step_s <= 0:
            raise ConfigurationError("duration and step must be positive")
        count = int(duration_s / step_s) + 1
        return [self.now_s + i * step_s for i in range(count)]
