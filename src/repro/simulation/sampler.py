"""Sampling helpers for the constellation experiments.

Figures 7 and 8 average over constellation geometry: latencies are sampled
at several *epochs* (constellation rotations) and several user locations.
Everything is derived from one experiment seed for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.geo.coordinates import GeoPoint


def seeded_rng(seed: int, *stream: int) -> np.random.Generator:
    """A numpy Generator for the (seed, stream...) tuple.

    Distinct streams derived from one experiment seed stay independent, so
    adding a sampling site never perturbs existing ones.
    """
    return np.random.default_rng((seed, *stream))


@dataclass
class EpochSampler:
    """Draws simulation epochs spread over one orbital period."""

    period_s: float
    num_epochs: int
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ConfigurationError("period must be positive")
        if self.num_epochs < 1:
            raise ConfigurationError("need at least one epoch")
        self._rng = seeded_rng(self.seed, 0xE70C)

    def epochs(self) -> list[float]:
        """Stratified random epochs: one uniform draw per period stratum."""
        stratum = self.period_s / self.num_epochs
        return [
            float(i * stratum + self._rng.uniform(0.0, stratum))
            for i in range(self.num_epochs)
        ]


def user_sample_points(
    rng: np.random.Generator,
    count: int,
    max_abs_latitude_deg: float = 53.0,
) -> list[GeoPoint]:
    """Random user locations, area-uniform within the served latitude band.

    Shell 1's 53 deg inclination bounds where service exists; sampling is
    uniform over the sphere's area within the band (uniform in sin(lat)).
    """
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    if not 0 < max_abs_latitude_deg <= 90:
        raise ConfigurationError("max latitude must be in (0, 90]")
    sin_max = np.sin(np.radians(max_abs_latitude_deg))
    sin_lat = rng.uniform(-sin_max, sin_max, size=count)
    lats = np.degrees(np.arcsin(sin_lat))
    lons = rng.uniform(-180.0, 180.0, size=count)
    return [GeoPoint(float(lat), float(lon), 0.0) for lat, lon in zip(lats, lons)]
