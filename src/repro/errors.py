"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A constellation, network, or experiment was configured inconsistently."""


class GeodesyError(ReproError):
    """Invalid geographic input (latitude/longitude out of range, etc.)."""


class RoutingError(ReproError):
    """No route exists between two endpoints in the current topology."""


class VisibilityError(ReproError):
    """No satellite is visible from the requested location at the given time."""


class CacheError(ReproError):
    """Invalid cache operation (e.g. object larger than the cache)."""


class ContentNotFoundError(ReproError):
    """Requested content is not present in any reachable cache or origin."""


class UnavailableError(ContentNotFoundError):
    """No serving path exists at all under the active fault state.

    Raised when every rung of the fallback ladder is down: no live access
    satellite is visible, the retry budget was exhausted on failed/timed-out
    replicas, and the bent-pipe ground segment is also unreachable. Subclass
    of :class:`ContentNotFoundError` so degraded-mode callers can treat
    "content unreachable" uniformly while the CLI distinguishes the two.
    """


class OverloadedError(UnavailableError):
    """The request was refused by overload protection, not by a fault.

    Raised when admission control sheds the request (every surviving rung
    was at capacity for the request's priority class) or when the request's
    end-to-end deadline budget ran out before any rung could complete.
    Subclass of :class:`UnavailableError` so degraded-mode callers that
    tolerate unavailability tolerate shedding too, while the CLI reports
    overload with its own exit code.
    """


class FaultConfigError(ConfigurationError):
    """A fault schedule or fault process was configured inconsistently."""


class DatasetError(ReproError):
    """A lookup into the embedded gazetteer failed."""


class PlacementError(ReproError):
    """A replica-placement request could not be satisfied."""


class ObsError(ReproError):
    """An observability artifact (metrics, trace) is malformed or unwritable.

    Never raised from the disabled (no-op recorder) path: with
    observability off the instrumented code cannot fail differently than
    the uninstrumented code did.
    """


class RunnerError(ReproError):
    """The crash-safe experiment runner could not execute a run."""


class CheckpointError(RunnerError):
    """A checkpoint store operation failed (unwritable directory, etc.).

    A *corrupt* checkpoint file never raises this: the store quarantines it
    and recomputes the shard instead.
    """


class ManifestMismatchError(RunnerError):
    """``--resume`` pointed at a run directory with an incompatible manifest
    (different experiment, configuration, or package version)."""


class DeadlineExceededError(RunnerError):
    """The whole-run wall-clock budget expired; completed shards are on disk."""


class ShardTimeoutError(RunnerError):
    """One shard overran its per-shard wall-clock budget (retryable)."""


class ShardExhaustedError(RunnerError):
    """A shard kept failing after exhausting its retry budget."""


class ShardQuarantinedError(RunnerError):
    """One or more shards were quarantined by the parallel executor.

    A shard that keeps killing, hanging, or failing its worker through the
    whole retry budget is set aside (recorded in ``quarantine.json`` under
    the run directory) so the rest of the run can complete; every healthy
    shard is checkpointed. Raised after the pool drains, carrying the list
    of quarantined shard ids."""


class RunInterruptedError(RunnerError):
    """The run stopped early (SIGINT/SIGTERM or an explicit shard budget)
    after flushing every completed shard; resume with ``--resume``."""
