"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A constellation, network, or experiment was configured inconsistently."""


class GeodesyError(ReproError):
    """Invalid geographic input (latitude/longitude out of range, etc.)."""


class RoutingError(ReproError):
    """No route exists between two endpoints in the current topology."""


class VisibilityError(ReproError):
    """No satellite is visible from the requested location at the given time."""


class CacheError(ReproError):
    """Invalid cache operation (e.g. object larger than the cache)."""


class ContentNotFoundError(ReproError):
    """Requested content is not present in any reachable cache or origin."""


class DatasetError(ReproError):
    """A lookup into the embedded gazetteer failed."""


class PlacementError(ReproError):
    """A replica-placement request could not be satisfied."""
