"""Latency building blocks shared by the terrestrial and Starlink path models.

The decomposition follows how real paths accrue delay:

* *propagation* — distance over medium speed (vacuum for radio/optical ISLs,
  ~2/3 c for fiber), inflated by route circuity on terrestrial segments;
* *per-hop forwarding* — a small per-router delay;
* *last mile* — the access-network delay at the client edge, strongly
  tier-dependent (DOCSIS/fiber in tier 1 vs congested links in tier 3);
* *jitter* — multiplicative log-normal plus additive exponential queueing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import (
    CIRCUITY_TIER1,
    CIRCUITY_TIER2,
    CIRCUITY_TIER3,
    FIBER_SPEED_KM_S,
    TERRESTRIAL_PER_HOP_MS,
)
from repro.errors import ConfigurationError

_TIER_CIRCUITY = {1: CIRCUITY_TIER1, 2: CIRCUITY_TIER2, 3: CIRCUITY_TIER3}

# Last-mile one-way medians by infrastructure tier (ms). Minimums observed in
# speed tests are far lower than medians, hence the wide log-normal sigma.
_TIER_LAST_MILE_MEDIAN_MS = {1: 3.5, 2: 5.0, 3: 8.0}
_LAST_MILE_SIGMA = 0.7

# Country-specific last-mile overrides where access quality deviates sharply
# from the tier norm. Nigeria's fixed/mobile access is persistently congested
# (the paper finds Starlink *beats* terrestrial there despite a local CDN,
# because subscribers "skip the still under-developed terrestrial
# infrastructure").
_COUNTRY_LAST_MILE_MEDIAN_MS = {"NG": 26.0}


def propagation_ms(distance_km: float, speed_km_s: float) -> float:
    """One-way propagation delay over ``distance_km`` at ``speed_km_s``."""
    if distance_km < 0:
        raise ConfigurationError(f"negative distance: {distance_km}")
    if speed_km_s <= 0:
        raise ConfigurationError(f"non-positive speed: {speed_km_s}")
    return distance_km / speed_km_s * 1000.0


def circuity_for_tier(tier: int) -> float:
    """Route-stretch factor (actual fiber path / geodesic) for an infra tier."""
    try:
        return _TIER_CIRCUITY[tier]
    except KeyError:
        raise ConfigurationError(f"unknown infrastructure tier: {tier}") from None


def estimate_router_hops(distance_km: float) -> int:
    """Rough router-hop count for a terrestrial path of the given geodesic length.

    A handful of hops inside the metro plus roughly one transit hop per
    600 km of long-haul distance.
    """
    if distance_km < 0:
        raise ConfigurationError(f"negative distance: {distance_km}")
    return 3 + int(distance_km / 600.0)


def fiber_path_ms(distance_km: float, tier: int, extra_hops: int = 0) -> float:
    """One-way latency of a terrestrial fiber path (propagation + forwarding).

    ``distance_km`` is the geodesic distance; circuity inflation comes from
    the infrastructure tier of the region the path crosses.
    """
    stretched = distance_km * circuity_for_tier(tier)
    hops = estimate_router_hops(distance_km) + extra_hops
    return propagation_ms(stretched, FIBER_SPEED_KM_S) + hops * TERRESTRIAL_PER_HOP_MS


@dataclass
class LatencyNoise:
    """Stochastic latency components, driven by a seeded numpy Generator.

    Keeping the RNG injected (rather than module-global) makes every
    experiment reproducible from its seed alone.
    """

    rng: np.random.Generator

    def last_mile_ms(self, tier: int, iso2: str | None = None) -> float:
        """One sampled last-mile one-way delay for a client in the given tier.

        ``iso2`` enables country-specific overrides (e.g. Nigeria's
        congested access networks).
        """
        median = _TIER_LAST_MILE_MEDIAN_MS.get(tier)
        if median is None:
            raise ConfigurationError(f"unknown infrastructure tier: {tier}")
        if iso2 is not None:
            median = _COUNTRY_LAST_MILE_MEDIAN_MS.get(iso2, median)
        return float(self.rng.lognormal(math.log(median), _LAST_MILE_SIGMA))

    def jitter_ms(self, base_ms: float, sigma: float = 0.06, queue_scale_ms: float = 1.5) -> float:
        """Total jittered latency: multiplicative log-normal + exponential queueing."""
        if base_ms < 0:
            raise ConfigurationError(f"negative base latency: {base_ms}")
        multiplicative = float(self.rng.lognormal(0.0, sigma))
        queueing = float(self.rng.exponential(queue_scale_ms))
        return base_ms * multiplicative + queueing

    def bufferbloat_ms(self, scale_ms: float = 60.0) -> float:
        """Extra queueing delay under load (heavy-tailed)."""
        return float(self.rng.exponential(scale_ms))

    def starlink_frame_jitter_ms(self) -> float:
        """Per-RTT spread from uplink-grant alignment and CGNAT queueing.

        Uniform over [0, max]: the terminal's request lands anywhere within
        the scheduler's grant cycle, independently each round trip.
        """
        from repro.constants import STARLINK_FRAME_JITTER_MAX_MS

        return float(self.rng.uniform(0.0, STARLINK_FRAME_JITTER_MAX_MS))
