"""Ku-band access-link geometry and delay sampling.

When the full constellation is not being propagated (the analytic AIM model),
the serving satellite's slant range is sampled from the elevation
distribution a terminal actually sees: elevations near the minimum are more
likely than zenith passes because the visible sky annulus is largest near
the horizon.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import (
    EARTH_RADIUS_KM,
    MIN_ELEVATION_USER_DEG,
    SPEED_OF_LIGHT_KM_S,
    STARLINK_PROCESSING_DELAY_MS,
    STARLINK_SCHEDULING_DELAY_MS,
    STARLINK_SHELL1_ALTITUDE_KM,
)
from repro.errors import ConfigurationError


def slant_range_for_elevation_km(
    elevation_deg: float, altitude_km: float = STARLINK_SHELL1_ALTITUDE_KM
) -> float:
    """Slant range to a satellite at ``altitude_km`` seen at ``elevation_deg``.

    Closed-form from the Earth-centre triangle: with Earth radius R and orbit
    radius R+h, the slant range at elevation e is
    ``sqrt((R sin e)^2 + h^2 + 2 R h) - R sin e``.
    """
    if not 0.0 <= elevation_deg <= 90.0:
        raise ConfigurationError(f"elevation {elevation_deg} outside [0, 90]")
    if altitude_km <= 0:
        raise ConfigurationError(f"altitude must be positive: {altitude_km}")
    re = EARTH_RADIUS_KM
    h = altitude_km
    sin_e = math.sin(math.radians(elevation_deg))
    return math.sqrt((re * sin_e) ** 2 + h * h + 2.0 * re * h) - re * sin_e


def sample_elevation_deg(
    rng: np.random.Generator, min_elevation_deg: float = MIN_ELEVATION_USER_DEG
) -> float:
    """Sample the serving satellite's elevation.

    Weighted towards lower elevations (Beta(1, 2) over the usable range):
    the sky annulus area shrinks towards zenith, and Starlink's scheduler
    balances load rather than always assigning the overhead satellite.
    """
    if not 0.0 <= min_elevation_deg < 90.0:
        raise ConfigurationError(f"min elevation {min_elevation_deg} outside [0, 90)")
    fraction = float(rng.beta(1.0, 2.0))
    return min_elevation_deg + fraction * (90.0 - min_elevation_deg)


def sample_access_one_way_ms(
    rng: np.random.Generator,
    altitude_km: float = STARLINK_SHELL1_ALTITUDE_KM,
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
) -> float:
    """One sampled one-way terminal->satellite latency (propagation + MAC + processing)."""
    elevation = sample_elevation_deg(rng, min_elevation_deg)
    slant = slant_range_for_elevation_km(elevation, altitude_km)
    return (
        slant / SPEED_OF_LIGHT_KM_S * 1000.0
        + STARLINK_SCHEDULING_DELAY_MS
        + STARLINK_PROCESSING_DELAY_MS
    )
