"""TCP throughput model: what the latency penalty does to download speed.

The AIM dataset's headline metrics are download/upload speeds, and TCP
couples those to RTT: the Mathis model bounds steady-state throughput at
``MSS / (RTT * sqrt(loss))``. A Starlink user parked behind a distant PoP
pays the RTT penalty twice — once as latency, once as throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

TCP_MSS_BYTES = 1460
_MATHIS_CONSTANT = math.sqrt(1.5)

# Residual loss rates by path class. Modern links are clean; what differs
# is the exposure: long ISL+WAN paths cross more queues, and the Ku-band
# link adds weather/handover loss.
LOSS_RATE_TERRESTRIAL = {1: 2e-5, 2: 8e-5, 3: 4e-4}
LOSS_RATE_STARLINK_BENT_PIPE = 2e-4
LOSS_RATE_STARLINK_ISL = 5e-4

SPEEDTEST_PARALLEL_FLOWS = 4
"""Speed tests open several parallel connections; aggregate throughput
scales roughly linearly until the link capacity binds."""


def mathis_throughput_mbps(
    rtt_ms: float, loss_rate: float, mss_bytes: int = TCP_MSS_BYTES
) -> float:
    """Steady-state TCP throughput bound (Mathis et al.).

    ``throughput = (MSS / RTT) * C / sqrt(p)`` with C ~ sqrt(3/2).
    """
    if rtt_ms <= 0:
        raise ConfigurationError(f"RTT must be positive, got {rtt_ms}")
    if not 0.0 < loss_rate < 1.0:
        raise ConfigurationError(f"loss rate must be in (0, 1), got {loss_rate}")
    if mss_bytes <= 0:
        raise ConfigurationError(f"MSS must be positive, got {mss_bytes}")
    segments_per_s = _MATHIS_CONSTANT / (rtt_ms / 1000.0 * math.sqrt(loss_rate))
    return segments_per_s * mss_bytes * 8.0 / 1e6


def effective_download_mbps(
    rtt_ms: float,
    loss_rate: float,
    link_capacity_mbps: float,
    flows: int = SPEEDTEST_PARALLEL_FLOWS,
) -> float:
    """Achievable download speed: min(capacity, flows x Mathis bound)."""
    if link_capacity_mbps <= 0:
        raise ConfigurationError(
            f"link capacity must be positive, got {link_capacity_mbps}"
        )
    if flows < 1:
        raise ConfigurationError(f"flows must be >= 1, got {flows}")
    return min(link_capacity_mbps, flows * mathis_throughput_mbps(rtt_ms, loss_rate))


@dataclass(frozen=True)
class ThroughputProfile:
    """The throughput-relevant parameters of one path class."""

    loss_rate: float
    link_capacity_mbps: float

    def download_mbps(self, rtt_ms: float) -> float:
        """Single-flow download speed over this path at the given RTT."""
        return effective_download_mbps(rtt_ms, self.loss_rate, self.link_capacity_mbps)


def starlink_profile(uses_isl: bool, link_capacity_mbps: float = 200.0) -> ThroughputProfile:
    """The Starlink path profile (ISL paths cross more loss points)."""
    loss = LOSS_RATE_STARLINK_ISL if uses_isl else LOSS_RATE_STARLINK_BENT_PIPE
    return ThroughputProfile(loss_rate=loss, link_capacity_mbps=link_capacity_mbps)


def starlink_upload_profile(uses_isl: bool, link_capacity_mbps: float = 20.0) -> ThroughputProfile:
    """Starlink uplink: the terminal's return channel is far narrower."""
    loss = LOSS_RATE_STARLINK_ISL if uses_isl else LOSS_RATE_STARLINK_BENT_PIPE
    return ThroughputProfile(loss_rate=loss, link_capacity_mbps=link_capacity_mbps)


_TERRESTRIAL_UPLOAD_CAPACITY_MBPS = {1: 150.0, 2: 40.0, 3: 10.0}


def terrestrial_profile(tier: int, link_capacity_mbps: float = 500.0) -> ThroughputProfile:
    """The terrestrial path profile for an infrastructure tier."""
    loss = LOSS_RATE_TERRESTRIAL.get(tier)
    if loss is None:
        raise ConfigurationError(f"unknown infrastructure tier: {tier}")
    return ThroughputProfile(loss_rate=loss, link_capacity_mbps=link_capacity_mbps)


def terrestrial_upload_profile(tier: int) -> ThroughputProfile:
    """Terrestrial uplink: asymmetric access plans cap the return channel."""
    capacity = _TERRESTRIAL_UPLOAD_CAPACITY_MBPS.get(tier)
    if capacity is None:
        raise ConfigurationError(f"unknown infrastructure tier: {tier}")
    return ThroughputProfile(
        loss_rate=LOSS_RATE_TERRESTRIAL[tier], link_capacity_mbps=capacity
    )
