"""Network path-latency models: access links, bent-pipe, terrestrial paths."""

from repro.network.latency import (
    propagation_ms,
    fiber_path_ms,
    circuity_for_tier,
    estimate_router_hops,
    LatencyNoise,
)
from repro.network.access import (
    slant_range_for_elevation_km,
    sample_elevation_deg,
    sample_access_one_way_ms,
)
from repro.network.terrestrial import TerrestrialPathModel
from repro.network.throughput import (
    mathis_throughput_mbps,
    effective_download_mbps,
    ThroughputProfile,
    starlink_profile,
    terrestrial_profile,
)
from repro.network.direct_to_cell import DirectToCellAccess, dtc_vs_dishy_rtt_penalty_ms
from repro.network.bentpipe import StarlinkPathModel, StarlinkModelParams, StarlinkPath

__all__ = [
    "propagation_ms",
    "fiber_path_ms",
    "circuity_for_tier",
    "estimate_router_hops",
    "LatencyNoise",
    "slant_range_for_elevation_km",
    "sample_elevation_deg",
    "sample_access_one_way_ms",
    "TerrestrialPathModel",
    "mathis_throughput_mbps",
    "effective_download_mbps",
    "ThroughputProfile",
    "starlink_profile",
    "terrestrial_profile",
    "DirectToCellAccess",
    "dtc_vs_dishy_rtt_penalty_ms",
    "StarlinkPathModel",
    "StarlinkModelParams",
    "StarlinkPath",
]
