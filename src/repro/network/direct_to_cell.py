"""Direct-to-cell access links (paper §5).

Starlink's direct-to-cell service talks to unmodified phones: tiny antennas
and strict power budgets mean the link only closes at high elevation, with
far lower per-beam capacity and longer scheduling cycles than a Dishy. For
SpaceCDN this is a *stronger* motivation — a phone can reach the overhead
satellite but every terrestrial detour hurts twice as much.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import SPEED_OF_LIGHT_KM_S, STARLINK_SHELL1_ALTITUDE_KM
from repro.errors import ConfigurationError
from repro.network.access import slant_range_for_elevation_km

DTC_MIN_ELEVATION_DEG = 40.0
"""Phones need a much higher elevation mask than a phased-array dish."""

DTC_SCHEDULING_DELAY_MS = 15.0
"""Longer frame cycles: the beam sweeps many phones per cell."""

DTC_PROCESSING_DELAY_MS = 3.0
DTC_DOWNLINK_MBPS_PER_BEAM = 10.0
"""Per-beam shared capacity (LTE-band, narrow spectrum)."""


@dataclass(frozen=True)
class DirectToCellAccess:
    """Access-link profile for a direct-to-cell phone."""

    altitude_km: float = STARLINK_SHELL1_ALTITUDE_KM
    min_elevation_deg: float = DTC_MIN_ELEVATION_DEG
    scheduling_delay_ms: float = DTC_SCHEDULING_DELAY_MS
    processing_delay_ms: float = DTC_PROCESSING_DELAY_MS
    beam_capacity_mbps: float = DTC_DOWNLINK_MBPS_PER_BEAM

    def __post_init__(self) -> None:
        if self.altitude_km <= 0:
            raise ConfigurationError("altitude must be positive")
        if not 0.0 <= self.min_elevation_deg < 90.0:
            raise ConfigurationError("min elevation must be in [0, 90)")
        if min(
            self.scheduling_delay_ms, self.processing_delay_ms, self.beam_capacity_mbps
        ) <= 0:
            raise ConfigurationError("delays and capacity must be positive")

    def one_way_ms(self, elevation_deg: float) -> float:
        """One-way phone->satellite latency at a given elevation."""
        if elevation_deg < self.min_elevation_deg:
            raise ConfigurationError(
                f"link does not close below {self.min_elevation_deg} deg "
                f"(got {elevation_deg})"
            )
        slant = slant_range_for_elevation_km(elevation_deg, self.altitude_km)
        return (
            slant / SPEED_OF_LIGHT_KM_S * 1000.0
            + self.scheduling_delay_ms
            + self.processing_delay_ms
        )

    def floor_rtt_ms(self) -> float:
        """Best-case phone RTT to the overhead satellite (zenith pass)."""
        return 2.0 * self.one_way_ms(90.0)

    def user_share_mbps(self, active_users_in_beam: int) -> float:
        """Fair-share downlink per phone when a beam serves many users."""
        if active_users_in_beam < 1:
            raise ConfigurationError("need at least one active user")
        return self.beam_capacity_mbps / active_users_in_beam


def dtc_vs_dishy_rtt_penalty_ms() -> float:
    """How much worse a phone's access RTT floor is than a Dishy's."""
    from repro.constants import (
        STARLINK_PROCESSING_DELAY_MS,
        STARLINK_SCHEDULING_DELAY_MS,
    )

    dishy_floor = 2.0 * (
        STARLINK_SHELL1_ALTITUDE_KM / SPEED_OF_LIGHT_KM_S * 1000.0
        + STARLINK_SCHEDULING_DELAY_MS
        + STARLINK_PROCESSING_DELAY_MS
    )
    return DirectToCellAccess().floor_rtt_ms() - dishy_floor
