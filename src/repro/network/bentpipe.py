"""Starlink subscriber path model: terminal -> satellite(s) -> gateway -> PoP.

This is the *effective* (analytic) model used for the large measurement
simulations. It resolves, per client city, the structural route Starlink
imposes:

1. the subscriber's traffic must exit at the country's **assigned PoP**;
2. it lands at the gateway (ground station) serving that PoP that is nearest
   to the client;
3. if that gateway is close (within single-satellite bent-pipe range), the
   path is a classic bent pipe; otherwise the traffic rides **inter-satellite
   links** over the great-circle distance to the gateway — exactly the
   Maputo -> Frankfurt case the paper dissects.

The full constellation-graph model (used for Figs. 7/8) lives in
:mod:`repro.topology`; both share the access-link and ISL latency constants,
and the analytic model's ISL stretch factor is calibrated against the graph
model (see ``tests/test_integration_models.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.constants import (
    CDN_SERVER_THINK_TIME_MS,
    ISL_HOP_PROCESSING_MS,
    SPEED_OF_LIGHT_KM_S,
    STARLINK_PROCESSING_DELAY_MS,
    STARLINK_SCHEDULING_DELAY_MS,
    STARLINK_SHELL1_ALTITUDE_KM,
)
from repro.errors import ConfigurationError
from repro.geo.coordinates import GeoPoint, great_circle_km
from repro.geo.datasets import City, assigned_pop
from repro.network.access import sample_access_one_way_ms
from repro.network.latency import LatencyNoise, fiber_path_ms
from repro.topology.ground import GroundSegment, GroundStation, PointOfPresence


@dataclass(frozen=True)
class StarlinkModelParams:
    """Tunables of the analytic Starlink path model."""

    altitude_km: float = STARLINK_SHELL1_ALTITUDE_KM
    bent_pipe_max_km: float = 1100.0
    """Max client-to-gateway ground distance servable by one satellite."""

    isl_path_stretch: float = 1.45
    """Base ratio of ISL route length to the great-circle distance."""

    isl_stretch_per_1000km: float = 0.055
    """Extra stretch per 1000 km of ground distance: long +Grid routes zigzag
    across planes and detour around the constellation seam, so the effective
    path inflation grows with distance (calibrated against paper Table 1)."""

    isl_hop_length_km: float = 1970.0
    """Average ISL hop length (Shell 1 in-plane neighbour spacing)."""

    bufferbloat_base_ms: float = 90.0
    bufferbloat_scale_ms: float = 60.0
    """Loaded-latency inflation: base + Exp(scale). Calibrated so that total
    loaded latency exceeds 200 ms in ISL-served countries (paper §3.2) while
    staying near 150-200 ms where idle latency is already low."""


@dataclass(frozen=True)
class StarlinkPath:
    """The resolved structural path from a client city to its PoP."""

    pop: PointOfPresence
    gateway: GroundStation
    gateway_distance_km: float
    uses_isl: bool
    isl_distance_km: float
    isl_hops: int
    one_way_floor_ms: float
    """Deterministic minimum one-way latency client -> PoP."""


@dataclass
class StarlinkPathModel:
    """Analytic latency model for Starlink subscriber paths."""

    noise: LatencyNoise
    ground: GroundSegment = field(default_factory=GroundSegment.from_gazetteer)
    params: StarlinkModelParams = field(default_factory=StarlinkModelParams)
    _path_cache: dict[tuple[float, float, str], StarlinkPath] = field(
        default_factory=dict, repr=False
    )
    _remote_cache: dict[tuple[float, float, str, float, float, str], float] = field(
        default_factory=dict, repr=False
    )

    def resolve_path(self, city: City) -> StarlinkPath:
        """Resolve the structural path for a client in ``city`` (cached)."""
        key = (city.lat_deg, city.lon_deg, city.iso2)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached

        pop_site = assigned_pop(city.iso2, city.lat_deg, city.lon_deg)
        pop = self.ground.pop_named(pop_site.name)
        stations = self.ground.stations_for_pop(pop.name)
        if not stations:
            raise ConfigurationError(f"PoP {pop.name!r} has no gateway in the gazetteer")
        gateway = min(
            stations, key=lambda gs: great_circle_km(city.location, gs.location)
        )
        gs_distance = great_circle_km(city.location, gateway.location)
        uses_isl = gs_distance > self.params.bent_pipe_max_km

        if uses_isl:
            stretch = (
                self.params.isl_path_stretch
                + self.params.isl_stretch_per_1000km * gs_distance / 1000.0
            )
            isl_distance = gs_distance * stretch
            isl_hops = max(1, round(isl_distance / self.params.isl_hop_length_km))
        else:
            isl_distance = 0.0
            isl_hops = 0

        path = StarlinkPath(
            pop=pop,
            gateway=gateway,
            gateway_distance_km=gs_distance,
            uses_isl=uses_isl,
            isl_distance_km=isl_distance,
            isl_hops=isl_hops,
            one_way_floor_ms=self._one_way_floor_ms(
                gs_distance, isl_distance, isl_hops, gateway, pop
            ),
        )
        self._path_cache[key] = path
        return path

    def _one_way_floor_ms(
        self,
        gs_distance_km: float,
        isl_distance_km: float,
        isl_hops: int,
        gateway: GroundStation,
        pop: PointOfPresence,
    ) -> float:
        """Deterministic one-way latency floor: zenith uplink, minimal path."""
        alt = self.params.altitude_km
        up_ms = (
            alt / SPEED_OF_LIGHT_KM_S * 1000.0
            + STARLINK_SCHEDULING_DELAY_MS
            + STARLINK_PROCESSING_DELAY_MS
        )
        if isl_hops > 0:
            space_ms = (
                isl_distance_km / SPEED_OF_LIGHT_KM_S * 1000.0
                + isl_hops * ISL_HOP_PROCESSING_MS
            )
            down_slant_km = alt
        else:
            space_ms = 0.0
            # The single bent-pipe satellite sits between client and gateway.
            down_slant_km = math.sqrt(alt * alt + gs_distance_km * gs_distance_km)
        down_ms = (
            down_slant_km / SPEED_OF_LIGHT_KM_S * 1000.0 + STARLINK_PROCESSING_DELAY_MS
        )
        return (
            up_ms
            + space_ms
            + down_ms
            + gateway.backhaul_latency_ms()
            + pop.processing_delay_ms
        )

    def sample_one_way_to_pop_ms(self, city: City) -> float:
        """One sampled one-way latency from a client in ``city`` to its PoP."""
        path = self.resolve_path(city)
        up_ms = sample_access_one_way_ms(self.noise.rng, self.params.altitude_km)
        # Everything past the uplink keeps its floor value; jitter is applied
        # to the whole RTT by the callers.
        floor_tail = path.one_way_floor_ms - (
            self.params.altitude_km / SPEED_OF_LIGHT_KM_S * 1000.0
            + STARLINK_SCHEDULING_DELAY_MS
            + STARLINK_PROCESSING_DELAY_MS
        )
        return up_ms + floor_tail

    def pop_to_remote_one_way_ms(
        self, city: City, remote: GeoPoint, remote_iso2: str
    ) -> float:
        """Deterministic one-way latency from the client's PoP to a remote host.

        Memoised per (city, remote) pair: the AIM generator revisits the
        same pairs for every probe and this leg carries no noise.
        """
        from repro.geo.datasets import country_by_iso2

        key = (
            city.lat_deg,
            city.lon_deg,
            city.iso2,
            remote.lat_deg,
            remote.lon_deg,
            remote_iso2,
        )
        cached = self._remote_cache.get(key)
        if cached is not None:
            return cached
        path = self.resolve_path(city)
        distance = great_circle_km(path.pop.location, remote)
        pop_tier = country_by_iso2(path.pop.site.iso2).infra_tier
        remote_tier = country_by_iso2(remote_iso2).infra_tier
        result = fiber_path_ms(distance, max(pop_tier, remote_tier))
        self._remote_cache[key] = result
        return result

    def idle_rtt_ms(
        self,
        city: City,
        remote: GeoPoint,
        remote_iso2: str,
        server_think_ms: float = CDN_SERVER_THINK_TIME_MS,
    ) -> float:
        """One sampled idle RTT from ``city`` to a remote host over Starlink."""
        one_way = self.sample_one_way_to_pop_ms(city) + self.pop_to_remote_one_way_ms(
            city, remote, remote_iso2
        )
        base = 2.0 * one_way + server_think_ms + self.noise.starlink_frame_jitter_ms()
        return self.noise.jitter_ms(base)

    def loaded_rtt_ms(self, city: City, remote: GeoPoint, remote_iso2: str) -> float:
        """RTT during an active download: idle RTT plus bufferbloat."""
        extra = self.params.bufferbloat_base_ms + self.noise.bufferbloat_ms(
            self.params.bufferbloat_scale_ms
        )
        return self.idle_rtt_ms(city, remote, remote_iso2) + extra

    def min_rtt_floor_ms(self, city: City, remote: GeoPoint, remote_iso2: str) -> float:
        """Deterministic lower bound of the RTT distribution."""
        path = self.resolve_path(city)
        one_way = path.one_way_floor_ms + self.pop_to_remote_one_way_ms(
            city, remote, remote_iso2
        )
        return 2.0 * one_way + CDN_SERVER_THINK_TIME_MS
