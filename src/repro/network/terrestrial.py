"""Terrestrial ISP path model: client city -> CDN/destination over fiber.

The model captures why terrestrial CDN access is usually fast: most clients
have an anycast CDN site in or near their own city, so the RTT is dominated
by the last mile. Long cross-region paths pick up circuity from the worst
infrastructure tier they cross (the paper cites Africa's inter-country
detours through Europe).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import CDN_SERVER_THINK_TIME_MS
from repro.errors import ConfigurationError
from repro.geo.coordinates import GeoPoint, great_circle_km
from repro.geo.datasets import City, country_by_iso2
from repro.network.latency import LatencyNoise, fiber_path_ms


@dataclass
class TerrestrialPathModel:
    """Latency model for paths that never leave the ground."""

    noise: LatencyNoise
    _core_cache: dict[tuple[float, float, str, float, float, str], float] = field(
        default_factory=dict, repr=False
    )

    def path_tier(self, client_iso2: str, remote_iso2: str) -> int:
        """Infrastructure tier governing circuity between two countries.

        A path is only as good as the worse end: a tier-1 client reaching a
        tier-3 country still crosses the tier-3 segment.
        """
        client_tier = country_by_iso2(client_iso2).infra_tier
        remote_tier = country_by_iso2(remote_iso2).infra_tier
        return max(client_tier, remote_tier)

    def one_way_core_ms(
        self, client: GeoPoint, client_iso2: str, remote: GeoPoint, remote_iso2: str
    ) -> float:
        """Deterministic one-way core-network latency (no last mile, no jitter).

        Memoised per endpoint pair: the AIM generator probes the same
        city-site pairs thousands of times and this leg never varies.
        """
        key = (
            client.lat_deg,
            client.lon_deg,
            client_iso2,
            remote.lat_deg,
            remote.lon_deg,
            remote_iso2,
        )
        cached = self._core_cache.get(key)
        if cached is not None:
            return cached
        distance = great_circle_km(client, remote)
        tier = self.path_tier(client_iso2, remote_iso2)
        result = fiber_path_ms(distance, tier)
        self._core_cache[key] = result
        return result

    def idle_rtt_ms(
        self,
        client_city: City,
        remote: GeoPoint,
        remote_iso2: str,
        server_think_ms: float = CDN_SERVER_THINK_TIME_MS,
    ) -> float:
        """One sampled idle RTT from a client in ``client_city`` to ``remote``.

        RTT = last mile (both directions share the access link, counted once
        per direction) + 2x core one-way + server think time, all jittered.
        """
        if server_think_ms < 0:
            raise ConfigurationError(f"negative think time: {server_think_ms}")
        core = self.one_way_core_ms(
            client_city.location, client_city.iso2, remote, remote_iso2
        )
        last_mile = self.noise.last_mile_ms(
            client_city.country.infra_tier, client_city.iso2
        )
        base = 2.0 * (core + last_mile) + server_think_ms
        return self.noise.jitter_ms(base)

    def min_rtt_floor_ms(
        self, client_city: City, remote: GeoPoint, remote_iso2: str
    ) -> float:
        """The deterministic lower bound of the RTT distribution (no noise)."""
        core = self.one_way_core_ms(
            client_city.location, client_city.iso2, remote, remote_iso2
        )
        return 2.0 * core + CDN_SERVER_THINK_TIME_MS
