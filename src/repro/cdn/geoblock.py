"""Geo-blocking: content licensing enforced on the *apparent* client location.

CDNs geo-fence content by the requesting IP's geolocation. A Starlink
subscriber's IP geolocates to their PoP's country — so a user physically in
a licensed country is blocked when their PoP is not (the paper cites cruise
passengers and subscribers routed across borders hitting 403s).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.geo.datasets import City, assigned_pop, country_by_iso2


@dataclass(frozen=True)
class BlockDecision:
    """The outcome of a geo-block check."""

    allowed: bool
    apparent_iso2: str
    physical_iso2: str

    @property
    def misblocked(self) -> bool:
        """Blocked solely because the exit country differs from the user's."""
        return not self.allowed and self.physical_iso2 != self.apparent_iso2


@dataclass
class GeoBlockPolicy:
    """Per-object country allow-lists, evaluated on the apparent location."""

    allowed_countries: dict[str, frozenset[str]] = field(default_factory=dict)

    def license_object(self, object_id: str, countries: set[str]) -> None:
        """Restrict ``object_id`` to the given ISO-3166 alpha-2 countries."""
        if not countries:
            raise ConfigurationError("allow-list cannot be empty")
        for iso2 in countries:
            country_by_iso2(iso2)  # validate
        self.allowed_countries[object_id] = frozenset(countries)

    def is_restricted(self, object_id: str) -> bool:
        """Whether the object carries any licensing restriction."""
        return object_id in self.allowed_countries

    def check_terrestrial(self, object_id: str, city: City) -> BlockDecision:
        """Check for a terrestrial client: apparent location == physical."""
        return self._check(object_id, apparent_iso2=city.iso2, physical_iso2=city.iso2)

    def check_starlink(self, object_id: str, city: City) -> BlockDecision:
        """Check for a Starlink client: apparent location is the PoP country."""
        pop = assigned_pop(city.iso2, city.lat_deg, city.lon_deg)
        return self._check(object_id, apparent_iso2=pop.iso2, physical_iso2=city.iso2)

    def _check(self, object_id: str, apparent_iso2: str, physical_iso2: str) -> BlockDecision:
        allowed_set = self.allowed_countries.get(object_id)
        allowed = allowed_set is None or apparent_iso2 in allowed_set
        return BlockDecision(
            allowed=allowed, apparent_iso2=apparent_iso2, physical_iso2=physical_iso2
        )

    def misblock_rate(self, object_id: str, cities: list[City]) -> float:
        """Fraction of cities whose Starlink users are blocked despite being
        physically in an allowed country."""
        if not cities:
            raise ConfigurationError("need at least one city")
        allowed_set = self.allowed_countries.get(object_id)
        if allowed_set is None:
            return 0.0
        eligible = [c for c in cities if c.iso2 in allowed_set]
        if not eligible:
            return 0.0
        misblocked = sum(
            1 for c in eligible if self.check_starlink(object_id, c).misblocked
        )
        return misblocked / len(eligible)
