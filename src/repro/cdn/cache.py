"""Cache policies: LRU, LFU, FIFO and TTL, all byte-capacity bounded.

Every cache stores :class:`~repro.cdn.content.ContentObject` values keyed by
object id, evicts to stay within a byte budget, and keeps running
:class:`CacheStats`. The same implementations back terrestrial CDN servers
and on-satellite caches — the paper's point is that the *placement*, not the
cache machinery, is what changes in space.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.cdn.content import ContentObject
from repro.errors import CacheError
from repro.obs.recorder import get_recorder

_CACHE_OP_LABELS = {
    op: (("op", op),) for op in ("hit", "miss", "insert", "evict")
}


@dataclass
class CacheStats:
    """Running counters for one cache."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hit ratio over all requests; 0.0 before any request."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


class Cache(ABC):
    """Byte-bounded object cache with pluggable eviction order."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise CacheError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self.stats = CacheStats()
        self._objects: dict[str, ContentObject] = {}

    # -- policy hooks ---------------------------------------------------

    @abstractmethod
    def _on_hit(self, object_id: str) -> None:
        """Update recency/frequency bookkeeping after a hit."""

    @abstractmethod
    def _on_insert(self, object_id: str) -> None:
        """Register a newly inserted object."""

    @abstractmethod
    def _pick_victim(self) -> str:
        """Choose the object id to evict next."""

    @abstractmethod
    def _on_evict(self, object_id: str) -> None:
        """Drop bookkeeping for an evicted object."""

    # -- public API -----------------------------------------------------

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def object_ids(self) -> set[str]:
        """Ids currently cached."""
        return set(self._objects)

    def get(self, object_id: str) -> ContentObject | None:
        """Look an object up, updating hit/miss statistics."""
        obj = self._objects.get(object_id)
        rec = get_recorder()
        if obj is None:
            self.stats.misses += 1
            if rec.enabled:
                rec.inc("repro_cache_ops_total", _CACHE_OP_LABELS["miss"])
            return None
        self.stats.hits += 1
        if rec.enabled:
            rec.inc("repro_cache_ops_total", _CACHE_OP_LABELS["hit"])
        self._on_hit(object_id)
        return obj

    def peek(self, object_id: str) -> ContentObject | None:
        """Look an object up without touching statistics or recency."""
        return self._objects.get(object_id)

    def put(self, obj: ContentObject) -> list[str]:
        """Insert an object, evicting as needed; returns evicted ids.

        Re-inserting a cached id refreshes its policy position. Objects
        larger than the whole cache raise :class:`CacheError`.
        """
        if obj.size_bytes > self.capacity_bytes:
            raise CacheError(
                f"object {obj.object_id!r} ({obj.size_bytes} B) exceeds cache "
                f"capacity ({self.capacity_bytes} B)"
            )
        if obj.object_id in self._objects:
            self._on_hit(obj.object_id)
            return []

        evicted: list[str] = []
        while self.used_bytes + obj.size_bytes > self.capacity_bytes:
            victim = self._pick_victim()
            evicted.append(victim)
            self._remove(victim)
            self.stats.evictions += 1
        self._objects[obj.object_id] = obj
        self.used_bytes += obj.size_bytes
        self._on_insert(obj.object_id)
        self.stats.insertions += 1
        rec = get_recorder()
        if rec.enabled:
            rec.inc("repro_cache_ops_total", _CACHE_OP_LABELS["insert"])
            if evicted:
                rec.inc(
                    "repro_cache_ops_total",
                    _CACHE_OP_LABELS["evict"],
                    float(len(evicted)),
                )
        return evicted

    def remove(self, object_id: str) -> bool:
        """Explicitly remove an object; returns whether it was present."""
        if object_id not in self._objects:
            return False
        self._remove(object_id)
        return True

    def _remove(self, object_id: str) -> None:
        obj = self._objects.pop(object_id)
        self.used_bytes -= obj.size_bytes
        self._on_evict(object_id)

    def clear(self) -> None:
        """Drop every object (statistics are preserved)."""
        for object_id in list(self._objects):
            self._remove(object_id)


class HoldersIndex:
    """Reverse content index: which satellites currently hold which objects.

    The request-level system maintains one of these alongside its
    per-satellite caches; every cache insert/evict/wipe flows through
    :meth:`add` / :meth:`discard` / :meth:`drop_satellite`, so the index is
    exact by construction — a satellite appears in ``holders(object_id)``
    if and only if its cache holds the object right now.

    Beyond the per-object sets, the index can expose a **holders matrix**:
    a dense ``(objects, satellites)`` boolean bitmap over a chosen cohort
    of object ids (:meth:`holders_matrix`). The matrix is a *live view*,
    maintained incrementally by the same ``add``/``discard`` calls that
    mutate the sets, and the index records which tracked objects changed
    since the view was built (:attr:`dirty_objects`) — the batched serve
    path resolves whole request cohorts against the bitmap and only
    recomputes the rows that cohort-time cache updates invalidated.
    """

    def __init__(self) -> None:
        self._holders: dict[str, set[int]] = {}
        self._view_rows: dict[str, int] = {}
        self._view_matrix: np.ndarray | None = None
        self.dirty_objects: set[str] = set()
        """Tracked object ids whose holder set changed since the live
        matrix view was (re)built. Cleared by :meth:`holders_matrix`."""

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._holders

    def __len__(self) -> int:
        return len(self._holders)

    def object_ids(self) -> set[str]:
        """Every object currently cached somewhere."""
        return set(self._holders)

    def holders(self, object_id: str) -> frozenset[int]:
        """Satellites currently caching ``object_id`` (empty when none)."""
        return frozenset(self._holders.get(object_id, ()))

    def holder_set(self, object_id: str) -> set[int] | None:
        """The live holder set (internal view; do not mutate), or ``None``."""
        return self._holders.get(object_id)

    def _touch_view(self, object_id: str, satellite: int, present: bool) -> None:
        row = self._view_rows.get(object_id)
        if row is None:
            return
        matrix = self._view_matrix
        if matrix is not None and 0 <= satellite < matrix.shape[1]:
            matrix[row, satellite] = present
        self.dirty_objects.add(object_id)

    def add(self, object_id: str, satellite: int) -> None:
        """Record that ``satellite``'s cache now holds ``object_id``."""
        self._holders.setdefault(object_id, set()).add(satellite)
        self._touch_view(object_id, satellite, True)

    def discard(self, object_id: str, satellite: int) -> None:
        """Record that ``satellite``'s cache dropped ``object_id``."""
        holders = self._holders.get(object_id)
        if holders is None:
            return
        holders.discard(satellite)
        if not holders:
            del self._holders[object_id]
        self._touch_view(object_id, satellite, False)

    def drop_satellite(self, satellite: int, object_ids: Iterable[str]) -> None:
        """Remove one satellite from the holder sets of ``object_ids``.

        The cache-wipe primitive (duty-cycle exit, power loss): the caller
        passes the wiped cache's contents so the index never retains a
        satellite whose cache no longer holds the object.
        """
        for object_id in object_ids:
            self.discard(object_id, satellite)

    def holders_matrix(
        self, object_ids: Sequence[str], num_satellites: int
    ) -> np.ndarray:
        """A dense ``(len(object_ids), num_satellites)`` holders bitmap.

        Row ``i`` is the boolean holder mask of ``object_ids[i]`` (repeated
        ids share contents but get distinct rows; only the first row per id
        is incrementally maintained — pass unique ids for a live view).
        The returned array becomes the index's *live view*: subsequent
        ``add``/``discard`` calls update it in place and record the object
        in :attr:`dirty_objects`. Building a new matrix replaces the view
        and clears the dirty set.
        """
        matrix = np.zeros((len(object_ids), num_satellites), dtype=bool)
        rows: dict[str, int] = {}
        for row, object_id in enumerate(object_ids):
            holders = self._holders.get(object_id)
            if holders:
                matrix[row, [s for s in holders if 0 <= s < num_satellites]] = True
            rows.setdefault(object_id, row)
        self._view_rows = rows
        self._view_matrix = matrix
        self.dirty_objects = set()
        return matrix

    def release_view(self) -> None:
        """Detach the live matrix view (updates stop; sets stay exact)."""
        self._view_rows = {}
        self._view_matrix = None
        self.dirty_objects = set()


class LruCache(Cache):
    """Evicts the least-recently-used object."""

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._order: OrderedDict[str, None] = OrderedDict()

    def _on_hit(self, object_id: str) -> None:
        self._order.move_to_end(object_id)

    def _on_insert(self, object_id: str) -> None:
        self._order[object_id] = None

    def _pick_victim(self) -> str:
        return next(iter(self._order))

    def _on_evict(self, object_id: str) -> None:
        del self._order[object_id]


class FifoCache(Cache):
    """Evicts in insertion order, ignoring accesses."""

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._order: OrderedDict[str, None] = OrderedDict()

    def _on_hit(self, object_id: str) -> None:
        pass  # FIFO ignores recency.

    def _on_insert(self, object_id: str) -> None:
        self._order[object_id] = None

    def _pick_victim(self) -> str:
        return next(iter(self._order))

    def _on_evict(self, object_id: str) -> None:
        del self._order[object_id]


class LfuCache(Cache):
    """Evicts the least-frequently-used object (FIFO tie-break)."""

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._counts: Counter[str] = Counter()
        self._arrival: dict[str, int] = {}
        self._clock = 0

    def _on_hit(self, object_id: str) -> None:
        self._counts[object_id] += 1

    def _on_insert(self, object_id: str) -> None:
        self._counts[object_id] = 1
        self._clock += 1
        self._arrival[object_id] = self._clock

    def _pick_victim(self) -> str:
        return min(
            self._counts, key=lambda oid: (self._counts[oid], self._arrival[oid])
        )

    def _on_evict(self, object_id: str) -> None:
        del self._counts[object_id]
        del self._arrival[object_id]


class TtlCache(LruCache):
    """LRU cache whose entries also expire after ``ttl_s`` of simulated time.

    Time is supplied by the caller via :meth:`advance_to`; expiry is lazy
    (checked on access) plus explicit via :meth:`expire`.
    """

    def __init__(self, capacity_bytes: int, ttl_s: float) -> None:
        if ttl_s <= 0:
            raise CacheError(f"TTL must be positive, got {ttl_s}")
        super().__init__(capacity_bytes)
        self.ttl_s = ttl_s
        self._now_s = 0.0
        self._expiry: dict[str, float] = {}

    def advance_to(self, now_s: float) -> None:
        """Move the cache clock forward (monotonically)."""
        if now_s < self._now_s:
            raise CacheError(f"clock moved backwards: {now_s} < {self._now_s}")
        self._now_s = now_s

    def get(self, object_id: str) -> ContentObject | None:
        expiry = self._expiry.get(object_id)
        if expiry is not None and expiry <= self._now_s:
            self._remove(object_id)
        return super().get(object_id)

    def _on_insert(self, object_id: str) -> None:
        super()._on_insert(object_id)
        self._expiry[object_id] = self._now_s + self.ttl_s

    def _on_evict(self, object_id: str) -> None:
        super()._on_evict(object_id)
        self._expiry.pop(object_id, None)

    def expire(self) -> list[str]:
        """Eagerly drop every expired entry; returns dropped ids."""
        expired = [oid for oid, t in self._expiry.items() if t <= self._now_s]
        for object_id in expired:
            self._remove(object_id)
        return expired
