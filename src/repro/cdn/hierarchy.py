"""Two-tier CDN hierarchy: edges -> regional parents -> origin (paper §2).

"A content delivery network is a hierarchy of geo-distributed servers";
misses at the edge fill from a regional parent cache before falling back to
the origin, which is what keeps WAN traffic low for terrestrial users — and
what the PoP mis-mapping defeats for LSN users (their requests land at an
edge whose *region* does not match their content interest, so the parent
tier misses too).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cdn.cache import Cache, LruCache
from repro.cdn.content import ContentObject
from repro.cdn.server import OriginServer
from repro.constants import CDN_SERVER_THINK_TIME_MS, FIBER_SPEED_KM_S
from repro.errors import ConfigurationError, DatasetError
from repro.geo.coordinates import great_circle_km
from repro.geo.datasets import CdnSite, country_by_iso2


@dataclass(frozen=True)
class HierarchyServeResult:
    """Outcome of one request through the hierarchy."""

    object_id: str
    level: str  # "edge", "parent", or "origin"
    latency_ms: float
    """Latency added behind the edge (think times + fill RTTs); the
    client-to-edge RTT is the caller's path model's business."""


@dataclass
class CdnHierarchy:
    """Edge caches grouped under regional parent caches over one origin."""

    origin: OriginServer
    edge_cache_bytes: int = 10**8
    parent_cache_bytes: int = 10**10
    think_time_ms: float = CDN_SERVER_THINK_TIME_MS

    _edges: dict[str, Cache] = field(default_factory=dict, repr=False)
    _parents: dict[str, Cache] = field(default_factory=dict, repr=False)
    _edge_sites: dict[str, CdnSite] = field(default_factory=dict, repr=False)
    stats: dict[str, int] = field(
        default_factory=lambda: {"edge": 0, "parent": 0, "origin": 0}
    )

    def __post_init__(self) -> None:
        if self.edge_cache_bytes <= 0 or self.parent_cache_bytes <= 0:
            raise ConfigurationError("cache capacities must be positive")

    def add_edge(self, site: CdnSite) -> None:
        """Register an edge site (its parent is its gazetteer region)."""
        if site.name in self._edges:
            raise ConfigurationError(f"edge {site.name!r} already registered")
        self._edges[site.name] = LruCache(self.edge_cache_bytes)
        self._edge_sites[site.name] = site
        region = self.region_of(site)
        if region not in self._parents:
            self._parents[region] = LruCache(self.parent_cache_bytes)

    @staticmethod
    def region_of(site: CdnSite) -> str:
        """The parent region an edge site belongs to."""
        return country_by_iso2(site.iso2).region

    def edge_names(self) -> list[str]:
        return sorted(self._edges)

    def _parent_fill_rtt_ms(self, site: CdnSite) -> float:
        """RTT of an edge fetching from its regional parent (~1500 km fiber)."""
        return 2.0 * (1500.0 * 1.4 / FIBER_SPEED_KM_S * 1000.0) + self.think_time_ms

    def _origin_fill_rtt_ms(self, site: CdnSite) -> float:
        distance = great_circle_km(site.location, self.origin.location)
        return 2.0 * (distance * 1.5 / FIBER_SPEED_KM_S * 1000.0) + self.origin.think_time_ms

    def serve(self, edge_name: str, object_id: str) -> HierarchyServeResult:
        """Serve one request arriving at the named edge.

        Misses fill downwards and populate every level on the way back up
        (standard hierarchical caching).
        """
        edge = self._edges.get(edge_name)
        if edge is None:
            raise DatasetError(f"unknown edge: {edge_name!r}")
        site = self._edge_sites[edge_name]
        parent = self._parents[self.region_of(site)]

        if edge.get(object_id) is not None:
            self.stats["edge"] += 1
            return HierarchyServeResult(object_id, "edge", self.think_time_ms)

        if parent.get(object_id) is not None:
            self.stats["parent"] += 1
            self._insert(edge, self.origin.fetch(object_id))
            return HierarchyServeResult(
                object_id,
                "parent",
                self.think_time_ms + self._parent_fill_rtt_ms(site),
            )

        obj = self.origin.fetch(object_id)  # raises ContentNotFoundError
        self.stats["origin"] += 1
        self._insert(parent, obj)
        self._insert(edge, obj)
        return HierarchyServeResult(
            object_id,
            "origin",
            self.think_time_ms
            + self._parent_fill_rtt_ms(site)
            + self._origin_fill_rtt_ms(site),
        )

    @staticmethod
    def _insert(cache: Cache, obj: ContentObject) -> None:
        if obj.size_bytes <= cache.capacity_bytes:
            cache.put(obj)

    def wan_offload_ratio(self) -> float:
        """Fraction of requests that never reached the origin — the metric
        CDNs exist to maximise (paper §2: 'reduce bandwidth costs by
        minimizing WAN traffic')."""
        total = sum(self.stats.values())
        if total == 0:
            return 0.0
        return 1.0 - self.stats["origin"] / total
