"""CDN substrate: content, cache policies, servers, anycast mapping, geo-blocking."""

from repro.cdn.content import ContentObject, Catalog, build_catalog
from repro.cdn.cache import (
    CacheStats,
    Cache,
    LruCache,
    LfuCache,
    FifoCache,
    TtlCache,
)
from repro.cdn.server import CdnServer, OriginServer, ServeResult
from repro.cdn.anycast import nearest_site, best_site_by_latency
from repro.cdn.mapping import (
    ClientMapping,
    GeodesicMapping,
    PopProximityMapping,
    MeasuredLatencyMapping,
)
from repro.cdn.geoblock import GeoBlockPolicy, BlockDecision
from repro.cdn.hierarchy import CdnHierarchy, HierarchyServeResult

__all__ = [
    "ContentObject",
    "Catalog",
    "build_catalog",
    "CacheStats",
    "Cache",
    "LruCache",
    "LfuCache",
    "FifoCache",
    "TtlCache",
    "CdnServer",
    "OriginServer",
    "ServeResult",
    "nearest_site",
    "best_site_by_latency",
    "ClientMapping",
    "GeodesicMapping",
    "PopProximityMapping",
    "MeasuredLatencyMapping",
    "GeoBlockPolicy",
    "BlockDecision",
    "CdnHierarchy",
    "HierarchyServeResult",
]
