"""Content objects and catalogs.

A :class:`ContentObject` is the unit the CDN caches: a web asset, a DASH
video segment, a news article. Objects carry *region affinity* — the paper's
central observation is that content popularity is geographic (Boca Juniors
matches matter in Argentina), so caches near the wrong PoP hold the wrong
objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError, ContentNotFoundError

KNOWN_KINDS = ("web", "image", "video-segment", "news", "game-asset")


@dataclass(frozen=True)
class ContentObject:
    """One cacheable object."""

    object_id: str
    size_bytes: int
    kind: str = "web"
    region: str = "global"
    """Region affinity tag (gazetteer region name or "global")."""

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(
                f"object {self.object_id!r} must have positive size"
            )
        if self.kind not in KNOWN_KINDS:
            raise ConfigurationError(f"unknown content kind: {self.kind!r}")


@dataclass
class Catalog:
    """An indexed collection of content objects."""

    objects: dict[str, ContentObject] = field(default_factory=dict)

    def add(self, obj: ContentObject) -> None:
        """Add an object; replacing an existing id is a configuration error."""
        if obj.object_id in self.objects:
            raise ConfigurationError(f"duplicate object id: {obj.object_id!r}")
        self.objects[obj.object_id] = obj

    def get(self, object_id: str) -> ContentObject:
        """Fetch an object by id or raise :class:`ContentNotFoundError`."""
        obj = self.objects.get(object_id)
        if obj is None:
            raise ContentNotFoundError(f"object {object_id!r} not in catalog")
        return obj

    def __contains__(self, object_id: str) -> bool:
        return object_id in self.objects

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self) -> Iterator[ContentObject]:
        return iter(self.objects.values())

    def by_region(self, region: str) -> list[ContentObject]:
        """All objects whose affinity matches ``region`` (or are global)."""
        return [o for o in self if o.region in (region, "global")]

    def total_bytes(self) -> int:
        """Sum of object sizes."""
        return sum(o.size_bytes for o in self)


# Size distributions per kind: (log-normal median bytes, sigma).
_SIZE_MODELS = {
    "web": (60_000, 1.0),
    "image": (300_000, 0.9),
    "video-segment": (4_000_000, 0.5),
    "news": (40_000, 0.8),
    "game-asset": (1_500_000, 0.7),
}


def build_catalog(
    rng: np.random.Generator,
    num_objects: int,
    regions: tuple[str, ...] = ("global",),
    global_fraction: float = 0.3,
    kind_weights: dict[str, float] | None = None,
) -> Catalog:
    """Generate a synthetic catalog.

    ``global_fraction`` of objects are region-free; the rest are assigned a
    region uniformly from ``regions``. Sizes follow per-kind log-normals.
    """
    if num_objects <= 0:
        raise ConfigurationError("num_objects must be positive")
    if not 0.0 <= global_fraction <= 1.0:
        raise ConfigurationError("global_fraction must be in [0, 1]")
    if not regions:
        raise ConfigurationError("need at least one region")

    weights = kind_weights or {"web": 0.5, "image": 0.25, "video-segment": 0.15, "news": 0.1}
    kinds = list(weights)
    probs = np.array([weights[k] for k in kinds], dtype=float)
    probs /= probs.sum()

    catalog = Catalog()
    for i in range(num_objects):
        kind = kinds[int(rng.choice(len(kinds), p=probs))]
        median, sigma = _SIZE_MODELS[kind]
        size = max(1, int(rng.lognormal(np.log(median), sigma)))
        if rng.random() < global_fraction:
            region = "global"
        else:
            region = str(regions[int(rng.integers(len(regions)))])
        catalog.add(
            ContentObject(object_id=f"obj-{i:06d}", size_bytes=size, kind=kind, region=region)
        )
    return catalog
