"""Anycast site selection.

Anycast routes a client to the site with the shortest *network* path — which
for terrestrial clients correlates with geography, and for Starlink clients
correlates with the PoP's geography instead. Both selectors below are pure
functions over a latency (or distance) oracle so the same code serves both
populations.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.geo.coordinates import GeoPoint, great_circle_km
from repro.geo.datasets import CdnSite


def nearest_site(point: GeoPoint, sites: Sequence[CdnSite]) -> CdnSite:
    """The geodesically nearest CDN site to a point."""
    if not sites:
        raise ConfigurationError("empty CDN site list")
    return min(sites, key=lambda s: great_circle_km(point, s.location))


def best_site_by_latency(
    sites: Sequence[CdnSite],
    latency_fn: Callable[[CdnSite], float],
) -> tuple[CdnSite, float]:
    """The site minimising ``latency_fn`` and the achieved latency.

    ``latency_fn`` is typically the median of several sampled RTTs — the
    paper determines each city's "optimal" CDN the same way.
    """
    if not sites:
        raise ConfigurationError("empty CDN site list")
    best: CdnSite | None = None
    best_latency = float("inf")
    for site in sites:
        latency = latency_fn(site)
        if latency < 0:
            raise ConfigurationError(f"negative latency for site {site.name!r}")
        if latency < best_latency:
            best, best_latency = site, latency
    assert best is not None  # sites is non-empty
    return best, best_latency
