"""Client-to-server mapping policies.

Three policies model how CDNs map users to caches (paper §2):

* :class:`GeodesicMapping` — idealised IP-geolocation: nearest site to the
  *client* (what terrestrial users effectively get);
* :class:`PopProximityMapping` — what anycast actually does to Starlink
  users: nearest site to their *PoP*, since that is where their address
  appears to be;
* :class:`MeasuredLatencyMapping` — the paper's methodology: probe several
  candidate sites and pick the median-latency winner.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from statistics import median
from typing import Callable, Sequence

from repro.cdn.anycast import nearest_site
from repro.errors import ConfigurationError
from repro.geo.coordinates import great_circle_km
from repro.geo.datasets import CdnSite, City, assigned_pop


class ClientMapping(ABC):
    """Strategy interface: which CDN site serves a given client city?"""

    @abstractmethod
    def site_for(self, city: City, sites: Sequence[CdnSite]) -> CdnSite:
        """Choose the serving site for a client in ``city``."""


@dataclass
class GeodesicMapping(ClientMapping):
    """Nearest site to the client's location — the terrestrial ideal."""

    def site_for(self, city: City, sites: Sequence[CdnSite]) -> CdnSite:
        return nearest_site(city.location, sites)


@dataclass
class PopProximityMapping(ClientMapping):
    """Nearest site to the client's assigned Starlink PoP.

    This reproduces the structural mis-mapping: a Maputo subscriber's public
    address lives in Frankfurt, so anycast sends them to Frankfurt's cache.
    """

    def site_for(self, city: City, sites: Sequence[CdnSite]) -> CdnSite:
        pop = assigned_pop(city.iso2, city.lat_deg, city.lon_deg)
        return nearest_site(pop.location, sites)


@dataclass
class MeasuredLatencyMapping(ClientMapping):
    """Probe-based mapping: sample RTTs per site, pick the lowest median.

    ``rtt_sampler(city, site)`` returns one RTT sample; ``probes`` samples
    are drawn per candidate. Candidates can be pre-filtered to the ``k``
    geodesically nearest sites (to the client or the PoP) for speed.
    """

    rtt_sampler: Callable[[City, CdnSite], float]
    probes: int = 5
    candidate_limit: int | None = None

    def __post_init__(self) -> None:
        if self.probes < 1:
            raise ConfigurationError(f"probes must be >= 1, got {self.probes}")
        if self.candidate_limit is not None and self.candidate_limit < 1:
            raise ConfigurationError("candidate_limit must be >= 1 when set")

    def site_for(self, city: City, sites: Sequence[CdnSite]) -> CdnSite:
        if not sites:
            raise ConfigurationError("empty CDN site list")
        candidates = list(sites)
        if self.candidate_limit is not None:
            candidates.sort(key=lambda s: great_circle_km(city.location, s.location))
            candidates = candidates[: self.candidate_limit]
        best_site = candidates[0]
        best_median = float("inf")
        for site in candidates:
            samples = [self.rtt_sampler(city, site) for _ in range(self.probes)]
            med = median(samples)
            if med < best_median:
                best_site, best_median = site, med
        return best_site
