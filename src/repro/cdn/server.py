"""CDN edge servers and origin servers.

A :class:`CdnServer` fronts one anycast site with a cache; misses are filled
from an :class:`OriginServer` over the WAN, which is exactly the costly path
the paper says LSN users trigger disproportionately often (their mapped cache
rarely holds their region's content).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cdn.cache import Cache, LruCache
from repro.cdn.content import Catalog, ContentObject
from repro.constants import CDN_SERVER_THINK_TIME_MS, FIBER_SPEED_KM_S
from repro.errors import ContentNotFoundError
from repro.geo.coordinates import GeoPoint, great_circle_km
from repro.geo.datasets import CdnSite


@dataclass(frozen=True)
class ServeResult:
    """Outcome of one request at a CDN server."""

    object_id: str
    hit: bool
    server_latency_ms: float
    """Latency added at/behind the server: think time, plus origin fetch on miss."""
    origin_distance_km: float = 0.0


@dataclass
class OriginServer:
    """The authoritative store holding the full catalog."""

    catalog: Catalog
    location: GeoPoint
    think_time_ms: float = 10.0

    def fetch(self, object_id: str) -> ContentObject:
        """Return an object or raise :class:`ContentNotFoundError`."""
        return self.catalog.get(object_id)

    def fetch_latency_ms(self, from_point: GeoPoint) -> float:
        """One-way WAN latency from ``from_point`` to this origin plus think time."""
        distance = great_circle_km(from_point, self.location)
        # Origin fetches cross the WAN over fiber with moderate circuity.
        return distance * 1.5 / FIBER_SPEED_KM_S * 1000.0 + self.think_time_ms


@dataclass
class CdnServer:
    """One CDN edge: a cache at an anycast site, backed by an origin."""

    site: CdnSite
    origin: OriginServer
    cache: Cache = field(default_factory=lambda: LruCache(capacity_bytes=10**9))
    think_time_ms: float = CDN_SERVER_THINK_TIME_MS

    @property
    def name(self) -> str:
        return self.site.name

    @property
    def location(self) -> GeoPoint:
        return self.site.location

    def serve(self, object_id: str) -> ServeResult:
        """Serve one request: cache hit, or origin fill + cache insert.

        Raises :class:`ContentNotFoundError` if the origin lacks the object.
        """
        cached = self.cache.get(object_id)
        if cached is not None:
            return ServeResult(
                object_id=object_id, hit=True, server_latency_ms=self.think_time_ms
            )
        obj = self.origin.fetch(object_id)  # propagate ContentNotFoundError
        origin_rtt = 2.0 * self.origin.fetch_latency_ms(self.location)
        self.cache.put(obj)
        return ServeResult(
            object_id=object_id,
            hit=False,
            server_latency_ms=self.think_time_ms + origin_rtt,
            origin_distance_km=great_circle_km(self.location, self.origin.location),
        )

    def warm(self, object_ids: list[str]) -> int:
        """Pre-populate the cache; returns how many objects were loaded."""
        loaded = 0
        for object_id in object_ids:
            try:
                obj = self.origin.fetch(object_id)
            except ContentNotFoundError:
                continue
            self.cache.put(obj)
            loaded += 1
        return loaded
