"""Analysis helpers: distributions, summaries, table rendering."""

from repro.analysis.stats import (
    Cdf,
    summarize,
    DistributionSummary,
    median_or_nan,
    delta_by_group,
)
from repro.analysis.tables import format_table, format_cdf_points
from repro.analysis.plot import ascii_cdf, ascii_histogram

__all__ = [
    "Cdf",
    "summarize",
    "DistributionSummary",
    "median_or_nan",
    "delta_by_group",
    "format_table",
    "format_cdf_points",
    "ascii_cdf",
    "ascii_histogram",
]
