"""ASCII plots for benchmark output: CDFs and histograms in a terminal.

The paper's figures are CDFs and box plots; these helpers render the same
series as monospace charts so ``pytest benchmarks/`` output is directly
comparable with the paper's figures without a plotting stack.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import Cdf
from repro.errors import ConfigurationError


def ascii_cdf(
    series: dict[str, Cdf],
    width: int = 70,
    height: int = 16,
    x_max: float | None = None,
    x_label: str = "latency ms",
) -> str:
    """Render named CDFs as overlaid ASCII step curves.

    Each series gets a marker character (its name's first letter); where
    curves overlap the later series wins the cell. The x axis spans
    [0, x_max] (default: the 99th percentile of the pooled samples).
    """
    if not series:
        raise ConfigurationError("no series to plot")
    if width < 20 or height < 5:
        raise ConfigurationError("plot must be at least 20x5")

    if x_max is None:
        pooled = np.concatenate([cdf.sorted_values for cdf in series.values()])
        x_max = float(np.percentile(pooled, 99))
    if x_max <= 0:
        raise ConfigurationError(f"x_max must be positive, got {x_max}")

    grid = [[" "] * width for _ in range(height)]
    markers: list[tuple[str, str]] = []
    for name, cdf in series.items():
        marker = name[0]
        markers.append((marker, name))
        for column in range(width):
            x = (column + 0.5) / width * x_max
            probability = cdf.at(x)
            row = height - 1 - int(probability * (height - 1))
            grid[row][column] = marker

    lines = []
    for i, row in enumerate(grid):
        probability = 1.0 - i / (height - 1)
        lines.append(f"{probability:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      0 {' ' * (width - 18)}{x_max:8.1f} {x_label}")
    legend = "  ".join(f"{marker}={name}" for marker, name in markers)
    lines.append(f"      {legend}")
    return "\n".join(lines)


def ascii_histogram(
    samples: list[float] | np.ndarray,
    bins: int = 12,
    width: int = 50,
    value_fmt: str = "{:8.1f}",
) -> str:
    """Render a horizontal-bar histogram of a sample."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ConfigurationError("no samples to plot")
    if bins < 2 or width < 5:
        raise ConfigurationError("need at least 2 bins and width 5")
    counts, edges = np.histogram(data, bins=bins)
    peak = counts.max()
    lines = []
    for count, low, high in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * (0 if peak == 0 else int(round(count / peak * width)))
        lines.append(
            f"{value_fmt.format(low)}..{value_fmt.format(high)} |{bar} {count}"
        )
    return "\n".join(lines)
