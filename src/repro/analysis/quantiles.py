"""Shared quantile arithmetic: the one place percentiles are computed.

Two estimators cover every caller in the repo:

* :func:`sample_quantile` / :func:`sample_quantiles` — exact-sample linear
  interpolation (numpy's default "linear" method, a.k.a. Hyndman–Fan
  type 7), used wherever the raw samples are in hand: experiment sweeps,
  :class:`repro.analysis.stats.Cdf`, trace summaries;
* :func:`histogram_quantile` — the bucket-resolved estimate for
  fixed-bucket cumulative histograms (Prometheus semantics: the upper
  bound of the first bucket whose cumulative count reaches the rank),
  used by :class:`repro.obs.metrics.Histogram` and the windowed
  time-series layer, where only bucket counts survive aggregation.

Callers validate ``q`` themselves (their error taxonomies differ); these
helpers assume ``0 <= q <= 1`` and answer NaN for empty inputs, so "no
samples" renders as "n/a" instead of raising mid-report.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np


def sample_quantile(samples: Sequence[float] | np.ndarray, q: float) -> float:
    """Linear-interpolation quantile of a sample; NaN when it is empty."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        return math.nan
    return float(np.quantile(data, q))


def sample_quantiles(
    samples: Sequence[float] | np.ndarray, qs: Sequence[float]
) -> tuple[float, ...]:
    """Several quantiles of one sample in a single numpy pass."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        return tuple(math.nan for _ in qs)
    return tuple(float(v) for v in np.quantile(data, np.asarray(qs, dtype=float)))


def histogram_quantile(
    cumulative: Iterable[tuple[float, int]], count: int, q: float
) -> float:
    """Bucket-resolved quantile of a cumulative histogram.

    ``cumulative`` is ascending ``(upper bound, cumulative count)`` pairs
    ending at ``(+Inf, count)``; the answer is the upper bound of the first
    bucket whose cumulative count reaches rank ``q * count`` — the
    Prometheus-style estimate, biased up by at most one bucket width.
    NaN when the histogram is empty.
    """
    if count == 0:
        return math.nan
    rank = q * count
    for bound, running in cumulative:
        if running >= rank:
            return bound
    return math.inf  # pragma: no cover - cumulative always reaches count
