"""Distribution statistics used by every experiment.

The paper reports medians, CDFs and per-country deltas; these helpers keep
that arithmetic in one tested place. The quantile arithmetic itself lives
in :mod:`repro.analysis.quantiles` (shared with the obs layer); this
module adds the sample-validation and reporting shapes around it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.quantiles import sample_quantile, sample_quantiles
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-style summary of a latency sample."""

    count: int
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float
    mean: float


def summarize(samples: list[float] | np.ndarray) -> DistributionSummary:
    """Summary statistics of a non-empty sample."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ConfigurationError("cannot summarize an empty sample")
    p25, median, p75, p95 = sample_quantiles(data, (0.25, 0.50, 0.75, 0.95))
    return DistributionSummary(
        count=int(data.size),
        minimum=float(data.min()),
        p25=p25,
        median=median,
        p75=p75,
        p95=p95,
        maximum=float(data.max()),
        mean=float(data.mean()),
    )


def median_or_nan(samples: list[float]) -> float:
    """Median of a sample, or NaN when the sample is empty."""
    if not samples:
        return math.nan
    return sample_quantile(samples, 0.5)


@dataclass
class Cdf:
    """Empirical cumulative distribution of a sample."""

    sorted_values: np.ndarray

    @staticmethod
    def from_samples(samples: list[float] | np.ndarray) -> "Cdf":
        data = np.asarray(samples, dtype=float)
        if data.size == 0:
            raise ConfigurationError("cannot build a CDF from an empty sample")
        return Cdf(sorted_values=np.sort(data))

    def at(self, x: float) -> float:
        """P(X <= x)."""
        return float(np.searchsorted(self.sorted_values, x, side="right")) / len(
            self.sorted_values
        )

    def quantile(self, q: float) -> float:
        """The q-quantile, q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        return sample_quantile(self.sorted_values, q)

    def points(self, num: int = 50) -> list[tuple[float, float]]:
        """``num`` evenly spaced (value, cumulative-probability) points."""
        if num < 2:
            raise ConfigurationError("need at least two points")
        qs = np.linspace(0.0, 1.0, num)
        values = sample_quantiles(self.sorted_values, qs)
        return [(value, float(q)) for value, q in zip(values, qs)]

    def __len__(self) -> int:
        return len(self.sorted_values)


def delta_by_group(
    group_a: dict[str, list[float]], group_b: dict[str, list[float]]
) -> dict[str, float]:
    """Median(A) - median(B) per key, over keys present (non-empty) in both.

    This is the paper's Fig. 2 arithmetic with A = Starlink, B = terrestrial.
    """
    deltas: dict[str, float] = {}
    for key in group_a.keys() & group_b.keys():
        a, b = group_a[key], group_b[key]
        if a and b:
            deltas[key] = median_or_nan(a) - median_or_nan(b)
    return deltas
