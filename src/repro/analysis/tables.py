"""Plain-text table rendering for benchmark and example output."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_fmt: str = "{:.1f}",
) -> str:
    """Render an aligned monospace table.

    Floats are formatted with ``float_fmt``; everything else with ``str``.
    """
    if not headers:
        raise ConfigurationError("headers cannot be empty")

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_cdf_points(
    series: dict[str, list[tuple[float, float]]], value_label: str = "latency_ms"
) -> str:
    """Render named CDF series as aligned quantile rows.

    Each series is a list of (value, cumulative-probability) points, as
    produced by :meth:`repro.analysis.stats.Cdf.points`.
    """
    if not series:
        raise ConfigurationError("no CDF series supplied")
    lines = []
    for name, points in series.items():
        lines.append(f"# {name} ({value_label} @ quantile)")
        for value, q in points:
            lines.append(f"  q={q:0.2f}  {value:8.2f}")
    return "\n".join(lines)
