"""Figure 2: per-country delta in median RTT to the optimal CDN.

The paper's world map shows (Starlink - terrestrial) median RTT per country:
positive almost everywhere (terrestrial faster, typically ~50 ms), and
120-150 ms in African countries served through Frankfurt.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import delta_by_group
from repro.analysis.tables import format_table
from repro.experiments.common import (
    DEFAULT_SEED,
    DEFAULT_TESTS_PER_CITY,
    aim_dataset,
    country_aim_dataset,
    gazetteer_countries,
)
from repro.geo.datasets import country_by_iso2
from repro.measurements.aim import STARLINK, TERRESTRIAL
from repro.runner.shards import ExperimentPlan


@dataclass(frozen=True)
class Figure2Result:
    """Per-country median RTT delta (Starlink minus terrestrial), ms."""

    deltas_ms: dict[str, float]

    def countries_where_starlink_faster(self) -> list[str]:
        return sorted(iso2 for iso2, d in self.deltas_ms.items() if d < 0)

    def worst_countries(self, count: int = 5) -> list[tuple[str, float]]:
        """The countries with the largest Starlink penalty."""
        ranked = sorted(self.deltas_ms.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:count]

    def median_delta_ms(self) -> float:
        """Median penalty across countries measured on both ISPs."""
        from statistics import median

        return float(median(self.deltas_ms.values()))


def run(
    seed: int = DEFAULT_SEED, tests_per_city: int = DEFAULT_TESTS_PER_CITY
) -> Figure2Result:
    """Regenerate the Fig. 2 per-country deltas."""
    dataset = aim_dataset(seed, tests_per_city)
    deltas = delta_by_group(
        dataset.rtts_by_country(STARLINK), dataset.rtts_by_country(TERRESTRIAL)
    )
    return Figure2Result(deltas_ms=deltas)


def country_delta(
    iso2: str,
    seed: int = DEFAULT_SEED,
    tests_per_city: int = DEFAULT_TESTS_PER_CITY,
) -> dict[str, float]:
    """One country's median-RTT delta from its per-country AIM batch.

    Empty for countries without Starlink coverage (no delta is defined),
    mirroring :func:`~repro.analysis.stats.delta_by_group`.
    """
    dataset = country_aim_dataset(iso2, seed, tests_per_city)
    return delta_by_group(
        dataset.rtts_by_country(STARLINK), dataset.rtts_by_country(TERRESTRIAL)
    )


def build_plan(
    seed: int = DEFAULT_SEED, tests_per_city: int = DEFAULT_TESTS_PER_CITY
) -> ExperimentPlan:
    """Sharded Fig. 2: one shard per gazetteer country."""
    countries = gazetteer_countries()
    shard_ids = tuple(f"country-{iso2}" for iso2 in countries)

    def run_shard(shard_id: str) -> dict:
        iso2 = countries[shard_ids.index(shard_id)]
        return {"deltas_ms": country_delta(iso2, seed, tests_per_city)}

    def merge(payloads: dict) -> Figure2Result:
        deltas: dict[str, float] = {}
        for shard_id in shard_ids:
            deltas.update(payloads[shard_id]["deltas_ms"])
        return Figure2Result(deltas_ms=deltas)

    return ExperimentPlan(
        experiment="figure2",
        config={
            "experiment": "figure2",
            "seed": seed,
            "tests_per_city": tests_per_city,
        },
        shard_ids=shard_ids,
        run_shard=run_shard,
        merge=merge,
        format=format_result,
    )


def format_result(result: Figure2Result) -> str:
    rows = [
        (country_by_iso2(iso2).name, iso2, delta)
        for iso2, delta in sorted(
            result.deltas_ms.items(), key=lambda kv: kv[1], reverse=True
        )
    ]
    table = format_table(("Country", "ISO", "delta median RTT (ms)"), rows)
    summary = (
        f"\nmedian delta across countries: {result.median_delta_ms():.1f} ms"
        f"\nStarlink faster in: {result.countries_where_starlink_faster() or 'none'}"
    )
    return table + summary
