"""Shared experiment infrastructure.

Caches the expensive shared artifacts (the synthetic AIM dataset, Shell-1
snapshots) so the per-figure modules and the benchmark suite don't rebuild
them repeatedly within one process.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import DatasetError
from repro.geo.datasets import all_cities
from repro.measurements.aim import AimDataset, AimGenerator
from repro.orbits.elements import ShellConfig, starlink_shell1
from repro.orbits.walker import Constellation, build_walker_delta
from repro.simulation.sampler import EpochSampler
from repro.topology.graph import SnapshotGraph, build_snapshot

DEFAULT_SEED = 7
DEFAULT_TESTS_PER_CITY = 30


@lru_cache(maxsize=2)
def shell1_constellation() -> Constellation:
    """The Starlink Shell 1 constellation (72 x 22 at 550 km)."""
    return build_walker_delta(starlink_shell1())


@lru_cache(maxsize=2)
def small_constellation() -> Constellation:
    """A 6 x 8 shell for smoke-mode experiment runs (CI, examples).

    Same altitude/inclination as Shell 1 so the geometry is representative,
    but 48 satellites instead of 1584 keeps chaos sweeps near-instant.
    """
    return build_walker_delta(
        ShellConfig(
            altitude_km=550.0,
            inclination_deg=53.0,
            num_planes=6,
            sats_per_plane=8,
            phase_offset=3,
            name="smoke-shell",
        )
    )


@lru_cache(maxsize=16)
def _shell1_snapshot_cached(t_s: float) -> SnapshotGraph:
    return build_snapshot(shell1_constellation(), t_s)


def shell1_snapshot(t_s: float) -> SnapshotGraph:
    """An ISL snapshot graph of Shell 1 at time ``t_s``.

    The expensive arrays (positions, CSR link weights) are cached per
    epoch; each call returns an independent defensive copy sharing them,
    so callers that mutate their snapshot (``attach_ground_node``, manual
    graph edits) cannot poison later experiments in the same process.
    """
    return _shell1_snapshot_cached(t_s).copy()


@lru_cache(maxsize=4)
def aim_dataset(
    seed: int = DEFAULT_SEED, tests_per_city: int = DEFAULT_TESTS_PER_CITY
) -> AimDataset:
    """The cached synthetic AIM dataset."""
    return AimGenerator(seed=seed).generate(tests_per_city=tests_per_city)


@lru_cache(maxsize=256)
def country_aim_dataset(
    iso2: str,
    seed: int = DEFAULT_SEED,
    tests_per_city: int = DEFAULT_TESTS_PER_CITY,
) -> AimDataset:
    """One country's AIM batch, independent of every other country.

    The sharded runner generates the dataset per-country so each shard is a
    pure function of (seed, country); the noise streams therefore differ
    from the sequential full-gazetteer :func:`aim_dataset` pass, which the
    monolithic experiments keep using unchanged.
    """
    cities = tuple(c for c in all_cities() if c.iso2 == iso2)
    if not cities:
        raise DatasetError(f"no gazetteer city in {iso2}")
    return AimGenerator(seed=seed).generate(
        tests_per_city=tests_per_city, cities=cities
    )


def gazetteer_countries() -> tuple[str, ...]:
    """Every country with at least one gazetteer city, sorted by ISO code."""
    return tuple(sorted({c.iso2 for c in all_cities()}))


def shell1_epochs(num_epochs: int, seed: int = DEFAULT_SEED) -> list[float]:
    """Stratified epochs over one Shell-1 orbital period."""
    sampler = EpochSampler(
        period_s=starlink_shell1().period_s, num_epochs=num_epochs, seed=seed
    )
    return sampler.epochs()
