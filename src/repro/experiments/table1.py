"""Table 1: distance to the best CDN and minRTT, Starlink vs terrestrial.

Paper values (for shape comparison): terrestrial clients sit kilometres from
their best CDN at single-digit-to-low-tens-ms minRTT, while Starlink clients
in Africa/Caribbean are mapped thousands of kilometres away at 40-145 ms;
only countries with a local PoP (ES, JP) reach parity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.errors import ConfigurationError
from repro.experiments.common import (
    DEFAULT_SEED,
    DEFAULT_TESTS_PER_CITY,
    aim_dataset,
    country_aim_dataset,
)
from repro.geo.datasets import country_by_iso2
from repro.measurements.aim import STARLINK, TERRESTRIAL
from repro.runner.shards import ExperimentPlan

# The 11 countries of the paper's Table 1, in its row order.
TABLE1_COUNTRIES: tuple[str, ...] = (
    "GT",
    "MZ",
    "CY",
    "SZ",
    "HT",
    "KE",
    "ZM",
    "RW",
    "LT",
    "ES",
    "JP",
)

# Paper's reported values for EXPERIMENTS.md comparison:
# (terrestrial km, terrestrial minRTT, starlink km, starlink minRTT)
PAPER_VALUES: dict[str, tuple[float, float, float, float]] = {
    "GT": (6.9, 7.0, 1220.9, 44.2),
    "MZ": (5.0, 7.2, 8776.5, 138.7),
    "CY": (34.7, 7.45, 2595.3, 55.35),
    "SZ": (301.8, 12.8, 4731.6, 122.7),
    "HT": (6.1, 1.5, 2063.2, 50.0),
    "KE": (197.5, 16.0, 6310.8, 110.9),
    "ZM": (1202.64, 44.0, 7545.9, 143.5),
    "RW": (9.25, 5.0, 3762.8, 87.5),
    "LT": (168.6, 12.4, 1243.2, 40.0),
    "ES": (375.3, 14.3, 13.4, 33.0),
    "JP": (253.0, 9.0, 57.0, 34.0),
}


@dataclass(frozen=True)
class Table1Row:
    """One country's measured values."""

    iso2: str
    country: str
    terrestrial_distance_km: float
    terrestrial_min_rtt_ms: float
    starlink_distance_km: float
    starlink_min_rtt_ms: float


@dataclass(frozen=True)
class Table1Result:
    rows: tuple[Table1Row, ...]


def run(
    seed: int = DEFAULT_SEED, tests_per_city: int = DEFAULT_TESTS_PER_CITY
) -> Table1Result:
    """Regenerate Table 1 from the synthetic AIM dataset."""
    dataset = aim_dataset(seed, tests_per_city)
    rows = []
    for iso2 in TABLE1_COUNTRIES:
        country = country_by_iso2(iso2)
        row = Table1Row(
            iso2=iso2,
            country=country.name,
            terrestrial_distance_km=dataset.mean_distance_km(iso2, TERRESTRIAL),
            terrestrial_min_rtt_ms=dataset.min_rtt_ms(iso2, TERRESTRIAL),
            starlink_distance_km=dataset.mean_distance_km(iso2, STARLINK),
            starlink_min_rtt_ms=dataset.min_rtt_ms(iso2, STARLINK),
        )
        if row.terrestrial_distance_km != row.terrestrial_distance_km:  # NaN guard
            raise ConfigurationError(f"no terrestrial tests generated for {iso2}")
        rows.append(row)
    return Table1Result(rows=tuple(rows))


def run_country(
    iso2: str,
    seed: int = DEFAULT_SEED,
    tests_per_city: int = DEFAULT_TESTS_PER_CITY,
) -> Table1Row:
    """One country's row from its seed-addressed per-country AIM batch."""
    dataset = country_aim_dataset(iso2, seed, tests_per_city)
    country = country_by_iso2(iso2)
    row = Table1Row(
        iso2=iso2,
        country=country.name,
        terrestrial_distance_km=dataset.mean_distance_km(iso2, TERRESTRIAL),
        terrestrial_min_rtt_ms=dataset.min_rtt_ms(iso2, TERRESTRIAL),
        starlink_distance_km=dataset.mean_distance_km(iso2, STARLINK),
        starlink_min_rtt_ms=dataset.min_rtt_ms(iso2, STARLINK),
    )
    if row.terrestrial_distance_km != row.terrestrial_distance_km:  # NaN guard
        raise ConfigurationError(f"no terrestrial tests generated for {iso2}")
    return row


def build_plan(
    seed: int = DEFAULT_SEED, tests_per_city: int = DEFAULT_TESTS_PER_CITY
) -> ExperimentPlan:
    """Sharded Table 1: one shard per country of the paper's table."""
    shard_ids = tuple(f"country-{iso2}" for iso2 in TABLE1_COUNTRIES)

    def run_shard(shard_id: str) -> dict:
        iso2 = TABLE1_COUNTRIES[shard_ids.index(shard_id)]
        row = run_country(iso2, seed, tests_per_city)
        return {
            "iso2": row.iso2,
            "country": row.country,
            "terrestrial_distance_km": row.terrestrial_distance_km,
            "terrestrial_min_rtt_ms": row.terrestrial_min_rtt_ms,
            "starlink_distance_km": row.starlink_distance_km,
            "starlink_min_rtt_ms": row.starlink_min_rtt_ms,
        }

    def merge(payloads: dict) -> Table1Result:
        return Table1Result(
            rows=tuple(Table1Row(**payloads[shard_id]) for shard_id in shard_ids)
        )

    return ExperimentPlan(
        experiment="table1",
        config={
            "experiment": "table1",
            "seed": seed,
            "tests_per_city": tests_per_city,
        },
        shard_ids=shard_ids,
        run_shard=run_shard,
        merge=merge,
        format=format_result,
    )


def format_result(result: Table1Result) -> str:
    """Render measured rows side by side with the paper's values."""
    headers = (
        "Country",
        "terr km",
        "terr minRTT",
        "star km",
        "star minRTT",
        "paper terr km/RTT",
        "paper star km/RTT",
    )
    table_rows = []
    for row in result.rows:
        paper = PAPER_VALUES[row.iso2]
        table_rows.append(
            (
                row.country,
                row.terrestrial_distance_km,
                row.terrestrial_min_rtt_ms,
                row.starlink_distance_km,
                row.starlink_min_rtt_ms,
                f"{paper[0]:.0f} / {paper[1]:.1f}",
                f"{paper[2]:.0f} / {paper[3]:.1f}",
            )
        )
    return format_table(headers, table_rows)
