"""Figure 7: SpaceCDN latency CDFs vs measured Starlink/terrestrial baselines.

For content cached on the access satellite ("1st/Sat") or reachable within
3, 5 or 10 ISL hops, the paper's xeoverse simulation shows: <= 5 hops is
competitive with terrestrial-ISP CDN access (and beats it in the tail), and
even 10 hops roughly halves today's Starlink-to-ground-CDN latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import Cdf
from repro.analysis.tables import format_table
from repro.constants import CDN_SERVER_THINK_TIME_MS
from repro.errors import ConfigurationError
from repro.experiments.common import (
    DEFAULT_SEED,
    aim_dataset,
    shell1_constellation,
    shell1_epochs,
    shell1_snapshot,
)
from repro.geo.coordinates import GeoPoint
from repro.measurements.aim import STARLINK, TERRESTRIAL
from repro.orbits.visibility import (
    nearest_visible_satellite,
    nearest_visible_satellites,
)
from repro.runner.shards import ExperimentPlan
from repro.simulation.sampler import seeded_rng, user_sample_points
from repro.topology import fastcore
from repro.topology.graph import SnapshotGraph, access_latency_ms

HOP_COUNTS: tuple[int, ...] = (0, 3, 5, 10)
"""0 = content on the access satellite itself (the paper's "1st/Sat")."""


@dataclass(frozen=True)
class Figure7Result:
    """RTT samples per curve of the figure."""

    spacecdn_rtts_ms: dict[int, list[float]]
    starlink_rtts_ms: list[float]
    terrestrial_rtts_ms: list[float]

    def cdf(self, curve: int | str) -> Cdf:
        """CDF for a hop-count curve or the 'starlink'/'terrestrial' baselines."""
        if curve == STARLINK:
            return Cdf.from_samples(self.starlink_rtts_ms)
        if curve == TERRESTRIAL:
            return Cdf.from_samples(self.terrestrial_rtts_ms)
        return Cdf.from_samples(self.spacecdn_rtts_ms[int(curve)])


def spacecdn_rtt_samples(
    users_per_epoch: int = 20,
    num_epochs: int = 5,
    hop_counts: tuple[int, ...] = HOP_COUNTS,
    seed: int = DEFAULT_SEED,
    batch: bool = True,
) -> dict[int, list[float]]:
    """Sample SpaceCDN RTTs over user locations and constellation epochs.

    For each (user, epoch): access the nearest visible satellite, then for
    every requested hop count n take the cheapest satellite exactly n ISL
    hops away; RTT doubles the one-way path and adds the cache think time.

    All users of an epoch resolve in one vectorised pass: a batched
    visibility query picks every access satellite at once, and one
    :func:`~repro.topology.fastcore.hop_ladder_batch` call over the unique
    access satellites replaces the per-user graph traversals.
    ``batch=False`` keeps the per-user scalar reference loop one flag away
    for debugging.
    """
    if users_per_epoch < 1 or num_epochs < 1:
        raise ConfigurationError("users_per_epoch and num_epochs must be >= 1")
    rng = seeded_rng(seed, 0x717)
    samples: dict[int, list[float]] = {n: [] for n in hop_counts}
    for epoch in shell1_epochs(num_epochs, seed):
        users = user_sample_points(rng, users_per_epoch)
        per_epoch = epoch_rtt_samples(epoch, users, hop_counts, batch=batch)
        for n in hop_counts:
            samples[n].extend(per_epoch[n])
    return samples


def epoch_rtt_samples(
    epoch: float,
    users: list[GeoPoint],
    hop_counts: tuple[int, ...] = HOP_COUNTS,
    batch: bool = True,
) -> dict[int, list[float]]:
    """One epoch's vectorised RTT pass (the unit of sharded execution)."""
    constellation = shell1_constellation()
    snapshot = shell1_snapshot(epoch)
    if not batch:
        return _epoch_rtt_samples_scalar(snapshot, users, hop_counts)
    max_hops = max(hop_counts)
    hop_array = np.asarray(hop_counts)
    access_idx, slant_km = nearest_visible_satellites(constellation, users, epoch)
    access_ms = access_latency_ms_batch(slant_km)
    unique_access, inverse = np.unique(access_idx, return_inverse=True)
    ladders = fastcore.hop_ladder_batch(snapshot.core, unique_access, max_hops)
    # (user, hop-count) RTT matrix; NaN where no satellite sits at
    # exactly n hops (never for a connected +Grid).
    rtts = (
        2.0 * (access_ms[:, None] + ladders[inverse][:, hop_array])
        + CDN_SERVER_THINK_TIME_MS
    )
    return {
        n: [float(v) for v in rtts[:, j] if not np.isnan(v)]
        for j, n in enumerate(hop_counts)
    }


def _epoch_rtt_samples_scalar(
    snapshot: SnapshotGraph,
    users: list[GeoPoint],
    hop_counts: tuple[int, ...],
) -> dict[int, list[float]]:
    """Per-user reference loop behind ``--no-batch``: one visibility query
    and one single-source routing pass per user, no shared matrices."""
    samples: dict[int, list[float]] = {n: [] for n in hop_counts}
    for user in users:
        access = nearest_visible_satellite(
            snapshot.constellation, user, snapshot.t_s
        )
        access_ms = access_latency_ms(access.slant_range_km)
        hops, lats = fastcore.single_source(
            snapshot.core, access.index, snapshot.active_mask
        )
        for n in hop_counts:
            at_n = lats[hops == n]
            if at_n.size == 0:
                continue
            samples[n].append(
                float(2.0 * (access_ms + at_n.min()) + CDN_SERVER_THINK_TIME_MS)
            )
    return samples


def access_latency_ms_batch(slant_range_km: np.ndarray) -> np.ndarray:
    """Vectorised :func:`~repro.topology.graph.access_latency_ms`."""
    from repro.constants import (
        SPEED_OF_LIGHT_KM_S,
        STARLINK_PROCESSING_DELAY_MS,
        STARLINK_SCHEDULING_DELAY_MS,
    )

    return (
        slant_range_km / SPEED_OF_LIGHT_KM_S * 1000.0
        + STARLINK_SCHEDULING_DELAY_MS
        + STARLINK_PROCESSING_DELAY_MS
    )


def run(
    seed: int = DEFAULT_SEED,
    users_per_epoch: int = 20,
    num_epochs: int = 5,
    batch: bool = True,
) -> Figure7Result:
    """Regenerate every curve of Fig. 7."""
    dataset = aim_dataset(seed)
    return Figure7Result(
        spacecdn_rtts_ms=spacecdn_rtt_samples(
            users_per_epoch, num_epochs, seed=seed, batch=batch
        ),
        starlink_rtts_ms=dataset.all_rtts_pooled(STARLINK),
        terrestrial_rtts_ms=dataset.all_rtts_pooled(TERRESTRIAL),
    )


def build_plan(
    seed: int = DEFAULT_SEED,
    users_per_epoch: int = 20,
    num_epochs: int = 5,
    batch: bool = True,
) -> ExperimentPlan:
    """Sharded Fig. 7: one shard per epoch plus one for the AIM baselines.

    Each epoch shard draws its users from a seed-addressed substream
    (``seeded_rng(seed, 0x717, epoch_index)``) so it is a pure function of
    (config, shard id) — recomputable in any order after a crash.
    """
    if users_per_epoch < 1 or num_epochs < 1:
        raise ConfigurationError("users_per_epoch and num_epochs must be >= 1")
    epoch_ids = tuple(f"epoch-{i:04d}" for i in range(num_epochs))

    def run_shard(shard_id: str) -> dict:
        if shard_id == "aim":
            dataset = aim_dataset(seed)
            return {
                "starlink": dataset.all_rtts_pooled(STARLINK),
                "terrestrial": dataset.all_rtts_pooled(TERRESTRIAL),
            }
        index = epoch_ids.index(shard_id)
        epoch = shell1_epochs(num_epochs, seed)[index]
        users = user_sample_points(seeded_rng(seed, 0x717, index), users_per_epoch)
        per_epoch = epoch_rtt_samples(epoch, users, batch=batch)
        return {"samples": [[n, per_epoch[n]] for n in HOP_COUNTS]}

    def merge(payloads: dict) -> Figure7Result:
        samples: dict[int, list[float]] = {n: [] for n in HOP_COUNTS}
        for shard_id in epoch_ids:
            for n, values in payloads[shard_id]["samples"]:
                samples[int(n)].extend(values)
        return Figure7Result(
            spacecdn_rtts_ms=samples,
            starlink_rtts_ms=payloads["aim"]["starlink"],
            terrestrial_rtts_ms=payloads["aim"]["terrestrial"],
        )

    return ExperimentPlan(
        experiment="figure7",
        config={
            "experiment": "figure7",
            "seed": seed,
            "users_per_epoch": users_per_epoch,
            "num_epochs": num_epochs,
            "batch": batch,
        },
        shard_ids=("aim",) + epoch_ids,
        run_shard=run_shard,
        merge=merge,
        format=format_result,
    )


def format_result(result: Figure7Result) -> str:
    rows = []
    curves: list[tuple[str, Cdf]] = [
        (f"{n} ISL hops" if n else "1st/Sat", result.cdf(n)) for n in HOP_COUNTS
    ]
    curves.append(("Starlink (AIM)", result.cdf(STARLINK)))
    curves.append(("Terrestrial (AIM)", result.cdf(TERRESTRIAL)))
    for name, cdf in curves:
        rows.append(
            (
                name,
                cdf.quantile(0.25),
                cdf.quantile(0.5),
                cdf.quantile(0.75),
                cdf.quantile(0.95),
            )
        )
    table = format_table(("curve", "p25 RTT (ms)", "median", "p75", "p95"), rows)

    five_hop_median = result.cdf(5).quantile(0.5)
    terrestrial_median = result.cdf(TERRESTRIAL).quantile(0.5)
    ten_hop_median = result.cdf(10).quantile(0.5)
    starlink_median = result.cdf(STARLINK).quantile(0.5)
    return table + (
        f"\n5-hop SpaceCDN median {five_hop_median:.1f} ms vs terrestrial median "
        f"{terrestrial_median:.1f} ms"
        f"\n10-hop SpaceCDN median {ten_hop_median:.1f} ms vs Starlink median "
        f"{starlink_median:.1f} ms"
    )
