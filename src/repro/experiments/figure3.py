"""Figure 3: the Maputo case study.

Median RTT from Maputo, Mozambique to each reachable Cloudflare site over
(a) Starlink — optimal is Frankfurt at ~160 ms, African sites exceed 250 ms
— and (b) a terrestrial ISP — optimal is Maputo itself at ~20 ms, with
Johannesburg at ~70 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median

from repro.analysis.tables import format_table
from repro.errors import ConfigurationError
from repro.experiments.common import DEFAULT_SEED
from repro.geo.datasets import cdn_site_by_name, city_by_name
from repro.measurements.aim import STARLINK, TERRESTRIAL, AimGenerator
from repro.runner.shards import ExperimentPlan

# The CDN sites visible in the paper's Fig. 3 maps.
CASE_STUDY_SITES: tuple[str, ...] = (
    "Frankfurt",
    "Lisbon",
    "Madrid",
    "Marseille",
    "Maputo",
    "Johannesburg",
    "Cape Town",
    "Durban",
    "Nairobi",
)

# Paper's headline medians (ms) for comparison in EXPERIMENTS.md.
PAPER_HEADLINES = {
    (STARLINK, "Frankfurt"): 160.0,
    (STARLINK, "Cape Town"): 250.0,
    (TERRESTRIAL, "Maputo"): 20.0,
    (TERRESTRIAL, "Johannesburg"): 70.0,
}


@dataclass(frozen=True)
class Figure3Result:
    """Median RTT (ms) per CDN site for each ISP class from Maputo."""

    starlink_ms: dict[str, float]
    terrestrial_ms: dict[str, float]

    def optimal_site(self, isp: str) -> tuple[str, float]:
        """The lowest-median-RTT site for one ISP class."""
        table = self.starlink_ms if isp == STARLINK else self.terrestrial_ms
        name = min(table, key=table.__getitem__)
        return name, table[name]


def _site_medians(
    generator: AimGenerator, isp: str, samples_per_site: int
) -> dict[str, float]:
    """Median RTT from Maputo to every case-study site for one ISP class."""
    maputo = city_by_name("Maputo")
    result: dict[str, float] = {}
    for site_name in CASE_STUDY_SITES:
        site = cdn_site_by_name(site_name)
        samples = [
            generator.sample_rtt_ms(maputo, site, isp)
            for _ in range(samples_per_site)
        ]
        result[site_name] = float(median(samples))
    return result


def run(seed: int = DEFAULT_SEED, samples_per_site: int = 25) -> Figure3Result:
    """Probe every case-study site from Maputo over both ISP classes."""
    if samples_per_site < 1:
        raise ConfigurationError("samples_per_site must be >= 1")
    generator = AimGenerator(seed=seed)
    return Figure3Result(
        starlink_ms=_site_medians(generator, STARLINK, samples_per_site),
        terrestrial_ms=_site_medians(generator, TERRESTRIAL, samples_per_site),
    )


def build_plan(
    seed: int = DEFAULT_SEED, samples_per_site: int = 25
) -> ExperimentPlan:
    """Sharded Fig. 3: one shard per ISP class (each with its own fresh,
    seed-addressed generator, so either can be recomputed in isolation)."""
    if samples_per_site < 1:
        raise ConfigurationError("samples_per_site must be >= 1")
    shard_ids = (STARLINK, TERRESTRIAL)

    def run_shard(shard_id: str) -> dict:
        generator = AimGenerator(seed=seed)
        return {"medians_ms": _site_medians(generator, shard_id, samples_per_site)}

    def merge(payloads: dict) -> Figure3Result:
        return Figure3Result(
            starlink_ms=payloads[STARLINK]["medians_ms"],
            terrestrial_ms=payloads[TERRESTRIAL]["medians_ms"],
        )

    return ExperimentPlan(
        experiment="figure3",
        config={
            "experiment": "figure3",
            "seed": seed,
            "samples_per_site": samples_per_site,
        },
        shard_ids=shard_ids,
        run_shard=run_shard,
        merge=merge,
        format=format_result,
    )


def format_result(result: Figure3Result) -> str:
    rows = [
        (site, result.starlink_ms[site], result.terrestrial_ms[site])
        for site in CASE_STUDY_SITES
    ]
    table = format_table(
        ("CDN site", "Starlink median RTT (ms)", "Terrestrial median RTT (ms)"), rows
    )
    star_best = result.optimal_site(STARLINK)
    terr_best = result.optimal_site(TERRESTRIAL)
    return (
        table
        + f"\noptimal over Starlink: {star_best[0]} at {star_best[1]:.1f} ms"
        + f"\noptimal over terrestrial: {terr_best[0]} at {terr_best[1]:.1f} ms"
    )
