"""Figure 3: the Maputo case study.

Median RTT from Maputo, Mozambique to each reachable Cloudflare site over
(a) Starlink — optimal is Frankfurt at ~160 ms, African sites exceed 250 ms
— and (b) a terrestrial ISP — optimal is Maputo itself at ~20 ms, with
Johannesburg at ~70 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median

from repro.analysis.tables import format_table
from repro.errors import ConfigurationError
from repro.experiments.common import DEFAULT_SEED
from repro.geo.datasets import cdn_site_by_name, city_by_name
from repro.measurements.aim import STARLINK, TERRESTRIAL, AimGenerator

# The CDN sites visible in the paper's Fig. 3 maps.
CASE_STUDY_SITES: tuple[str, ...] = (
    "Frankfurt",
    "Lisbon",
    "Madrid",
    "Marseille",
    "Maputo",
    "Johannesburg",
    "Cape Town",
    "Durban",
    "Nairobi",
)

# Paper's headline medians (ms) for comparison in EXPERIMENTS.md.
PAPER_HEADLINES = {
    (STARLINK, "Frankfurt"): 160.0,
    (STARLINK, "Cape Town"): 250.0,
    (TERRESTRIAL, "Maputo"): 20.0,
    (TERRESTRIAL, "Johannesburg"): 70.0,
}


@dataclass(frozen=True)
class Figure3Result:
    """Median RTT (ms) per CDN site for each ISP class from Maputo."""

    starlink_ms: dict[str, float]
    terrestrial_ms: dict[str, float]

    def optimal_site(self, isp: str) -> tuple[str, float]:
        """The lowest-median-RTT site for one ISP class."""
        table = self.starlink_ms if isp == STARLINK else self.terrestrial_ms
        name = min(table, key=table.__getitem__)
        return name, table[name]


def run(seed: int = DEFAULT_SEED, samples_per_site: int = 25) -> Figure3Result:
    """Probe every case-study site from Maputo over both ISP classes."""
    if samples_per_site < 1:
        raise ConfigurationError("samples_per_site must be >= 1")
    generator = AimGenerator(seed=seed)
    maputo = city_by_name("Maputo")

    def medians_for(isp: str) -> dict[str, float]:
        result: dict[str, float] = {}
        for site_name in CASE_STUDY_SITES:
            site = cdn_site_by_name(site_name)
            samples = [
                generator.sample_rtt_ms(maputo, site, isp)
                for _ in range(samples_per_site)
            ]
            result[site_name] = float(median(samples))
        return result

    return Figure3Result(
        starlink_ms=medians_for(STARLINK), terrestrial_ms=medians_for(TERRESTRIAL)
    )


def format_result(result: Figure3Result) -> str:
    rows = [
        (site, result.starlink_ms[site], result.terrestrial_ms[site])
        for site in CASE_STUDY_SITES
    ]
    table = format_table(
        ("CDN site", "Starlink median RTT (ms)", "Terrestrial median RTT (ms)"), rows
    )
    star_best = result.optimal_site(STARLINK)
    terr_best = result.optimal_site(TERRESTRIAL)
    return (
        table
        + f"\noptimal over Starlink: {star_best[0]} at {star_best[1]:.1f} ms"
        + f"\noptimal over terrestrial: {terr_best[0]} at {terr_best[1]:.1f} ms"
    )
