"""Overload sweep: offered load vs availability, shedding, and goodput.

The chaos sweep removes capacity; this one outruns it. The request-level
system runs under an :class:`~repro.overload.OverloadModel` while the
offered load is swept as a multiplier over a baseline stream, optionally
with a :class:`~repro.faults.FlashCrowdProcess` consuming background
capacity mid-run. Per load point: availability, shed fraction (split out
from fault unavailability), goodput, p50/p99 RTT and their inflation over
the lightest-load baseline — the curve that shows graceful degradation
past the knee instead of a cliff.

Every sweep point — including the lightest — runs the same overloaded
serving path so the comparison isolates the *load*, not the code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.analysis.quantiles import sample_quantiles
from repro.analysis.tables import format_table
from repro.cdn.content import Catalog, build_catalog
from repro.errors import ConfigurationError, FaultConfigError
from repro.experiments.common import (
    DEFAULT_SEED,
    shell1_constellation,
    small_constellation,
)
from repro.faults import FaultSchedule, FlashCrowdProcess, RetryPolicy
from repro.geo.datasets import all_cities
from repro.obs.recorder import get_recorder
from repro.orbits.walker import Constellation
from repro.overload import OverloadModel
from repro.runner.shards import ExperimentPlan
from repro.simulation.sampler import seeded_rng
from repro.spacecdn.bubbles import RegionalPopularity
from repro.spacecdn.placement import KPerPlanePlacement
from repro.spacecdn.system import SpaceCdnSystem
from repro.workloads.regional import RegionalRequestMixer
from repro.workloads.requests import RequestGenerator

LOAD_MULTIPLIERS: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)

CATALOG_REGIONS: tuple[str, ...] = ("africa", "europe")

_STREAM_DURATION_S = 300.0
"""Streams span five snapshot slots so per-slot capacity resets and
breaker cooldowns interact with the rotating topology."""


@dataclass(frozen=True)
class OverloadPoint:
    """The system's behaviour at one offered-load multiplier."""

    load: float
    requests: int
    offered_rps: float
    availability: float | None
    """Served share of all requests (shed and unavailable both count
    against it); ``None`` when the point saw zero requests."""
    shed_fraction: float | None
    """Share of requests refused by overload protection specifically."""
    goodput_rps: float
    """Served requests per second of stream time — the paper-facing
    "useful work" axis of the degradation curve."""
    p50_rtt_ms: float
    p99_rtt_ms: float
    p50_inflation: float
    """p50 RTT over the lightest-load baseline's p50 (queueing delay and
    retry backoff both inflate it as the knee approaches)."""
    p99_inflation: float
    timeouts: int
    retries: int
    unavailable: int
    shed: int
    deadline_exhausted: int


@dataclass(frozen=True)
class OverloadResult:
    """One full offered-load sweep."""

    shell: str
    points: tuple[OverloadPoint, ...]

    @property
    def baseline(self) -> OverloadPoint:
        """The lightest-load sweep point."""
        return min(self.points, key=lambda p: p.load)


def _constellation_for(shell: str) -> Constellation:
    if shell == "shell1":
        return shell1_constellation()
    if shell == "small":
        return small_constellation()
    raise ConfigurationError(f"unknown shell {shell!r}; choose 'shell1' or 'small'")


def parse_flash_crowd(spec: str) -> tuple[float, float, float]:
    """``START:END:EXTRA`` → a validated flash-crowd window.

    The CLI's eager parse: raises :class:`~repro.errors.FaultConfigError`
    (exit code 4) on malformed input, and constructs the process once so
    window/extra validation fires at parse time, not mid-run.
    """
    parts = spec.split(":")
    if len(parts) != 3:
        raise FaultConfigError(
            f"flash crowd must be START:END:EXTRA, got {spec!r}"
        )
    try:
        start_s, end_s, extra = (float(part) for part in parts)
    except ValueError as exc:
        raise FaultConfigError(f"non-numeric flash crowd field in {spec!r}") from exc
    FlashCrowdProcess(
        extra_requests_per_slot=extra, start_s=start_s, end_s=end_s
    )
    return start_s, end_s, extra


def _build_requests(catalog: Catalog, num_requests: int, seed: int):
    """A time-ordered Poisson stream over the catalog's home regions."""
    cities = tuple(
        c for c in all_cities() if c.country.region in CATALOG_REGIONS
    )
    if not cities:
        raise ConfigurationError("no cities in the catalog regions")
    mixer = RegionalRequestMixer(
        popularity=RegionalPopularity(catalog=catalog, seed=seed),
        rng=seeded_rng(seed, 0x0BAD0),
    )
    generator = RequestGenerator(
        cities=cities,
        mixer=mixer,
        requests_per_second_total=num_requests / _STREAM_DURATION_S,
        rng=seeded_rng(seed, 0x0BAD1),
    )
    return generator.generate_list(_STREAM_DURATION_S)


def _quantiles(samples: list[float]) -> tuple[float, float]:
    p50, p99 = sample_quantiles(samples, (0.5, 0.99))
    return p50, p99


@dataclass(eq=False)
class _SweepContext:
    """Shared, load-independent artifacts of one overload sweep."""

    constellation: Constellation
    catalog: Catalog
    preload: dict


@lru_cache(maxsize=2)
def _sweep_context(seed: int, shell: str) -> _SweepContext:
    """Build (once per configuration) everything the sweep points share."""
    constellation = _constellation_for(shell)
    catalog = build_catalog(
        seeded_rng(seed, 0x0BAD2),
        120,
        regions=CATALOG_REGIONS,
        kind_weights={"web": 1.0},
    )
    placement = KPerPlanePlacement(copies_per_plane=1)
    popular = RegionalPopularity(catalog=catalog, seed=seed)
    return _SweepContext(
        constellation=constellation,
        catalog=catalog,
        preload={
            object_id: placement.place_object(object_id, constellation.config)
            for region in popular.regions()
            for object_id in popular.top_objects(region, 10)
        },
    )


def _sweep_point(
    ctx: _SweepContext,
    load: float,
    seed: int,
    num_requests: int,
    capacity: float,
    ground_capacity: float,
    deadline_ms: float | None,
    flash_crowd: tuple[float, float, float] | None,
    max_attempts: int,
    batch: bool = True,
) -> dict:
    """One load multiplier's raw measurements (inflations are merge-time:
    they compare against the sweep's lightest-load point)."""
    rec = get_recorder()
    with rec.timer("overload.sweep_point"):
        requests = _build_requests(
            ctx.catalog, max(1, int(round(num_requests * load))), seed
        )
        schedule = None
        if flash_crowd is not None:
            start_s, end_s, extra = flash_crowd
            schedule = FaultSchedule().add(
                FlashCrowdProcess(
                    extra_requests_per_slot=extra, start_s=start_s, end_s=end_s
                )
            )
        system = SpaceCdnSystem(
            constellation=ctx.constellation,
            catalog=ctx.catalog,
            cache_bytes_per_satellite=10**9,
            fault_schedule=schedule,
            retry_policy=RetryPolicy(max_attempts=max_attempts),
            overload=OverloadModel(
                capacity_per_slot=capacity,
                ground_capacity_per_slot=ground_capacity,
                deadline_ms=deadline_ms,
                seed=seed,
            ),
        )
        system.preload(ctx.preload)
        if rec.enabled:
            # Offered load per simulated-time window: shows the overload
            # knee (and any flash-crowd burst) on the timeline dashboard.
            offered_labels = (("load", f"{load:g}"),)
            for request in requests:
                rec.window_inc(request.t_s, "repro_offered_total", offered_labels)
        system.run(requests, continue_on_unavailable=True, batch=batch)
    stats = system.stats
    if rec.enabled:
        labels = (("load", f"{load:g}"),)
        if stats.availability is not None:
            rec.set_gauge(
                "repro_overload_availability", stats.availability, labels
            )
        if stats.shed_fraction is not None:
            rec.set_gauge(
                "repro_overload_shed_fraction", stats.shed_fraction, labels
            )
        rec.set_gauge(
            "repro_overload_goodput_rps",
            stats.served / _STREAM_DURATION_S,
            labels,
        )
    p50, p99 = _quantiles(stats.rtt_samples_ms)
    return {
        "load": load,
        "requests": stats.requests,
        "offered_rps": stats.requests / _STREAM_DURATION_S,
        "availability": stats.availability,
        "shed_fraction": stats.shed_fraction,
        "goodput_rps": stats.served / _STREAM_DURATION_S,
        "p50_rtt_ms": p50,
        "p99_rtt_ms": p99,
        "timeouts": stats.timeouts,
        "retries": stats.retries,
        "unavailable": stats.unavailable,
        "shed": stats.shed,
        "deadline_exhausted": stats.deadline_exhausted,
    }


def _points_from_raw(raw_points: list[dict]) -> tuple[OverloadPoint, ...]:
    """Fold raw sweep points (in sorted-load order) into OverloadPoints,
    computing p50/p99 inflation against the first non-NaN baseline."""
    points: list[OverloadPoint] = []
    baseline_p50 = baseline_p99 = float("nan")
    for raw in raw_points:
        p50, p99 = raw["p50_rtt_ms"], raw["p99_rtt_ms"]
        if np.isnan(baseline_p50):
            baseline_p50, baseline_p99 = p50, p99
        points.append(
            OverloadPoint(
                p50_inflation=p50 / baseline_p50 if baseline_p50 else float("nan"),
                p99_inflation=p99 / baseline_p99 if baseline_p99 else float("nan"),
                **raw,
            )
        )
    return tuple(points)


def run(
    seed: int = DEFAULT_SEED,
    num_requests: int = 150,
    loads: tuple[float, ...] = LOAD_MULTIPLIERS,
    shell: str = "shell1",
    capacity: float = 6.0,
    ground_capacity: float = 40.0,
    deadline_ms: float | None = 1500.0,
    flash_crowd: tuple[float, float, float] | None = None,
    max_attempts: int = 3,
    batch: bool = True,
) -> OverloadResult:
    """Sweep offered-load multipliers over the overload-protected system.

    ``capacity``/``ground_capacity`` are requests per snapshot slot;
    ``num_requests`` is the load-1.0 stream size, scaled by each
    multiplier. ``batch=False`` serves through the scalar reference walk
    instead of cohort batching — results are identical either way (the
    property suite pins element-wise equality).
    """
    plan_config = _validated_config(
        seed, num_requests, loads, shell, capacity, ground_capacity,
        deadline_ms, flash_crowd, max_attempts, batch,
    )
    ordered = tuple(plan_config["loads"])
    ctx = _sweep_context(seed, shell)
    raw_points = [
        _sweep_point(
            ctx, load, seed, num_requests, capacity, ground_capacity,
            deadline_ms,
            None if flash_crowd is None else tuple(flash_crowd),
            max_attempts, batch,
        )
        for load in ordered
    ]
    return OverloadResult(shell=shell, points=_points_from_raw(raw_points))


def _validated_config(
    seed, num_requests, loads, shell, capacity, ground_capacity,
    deadline_ms, flash_crowd, max_attempts, batch,
) -> dict:
    """Validate sweep parameters eagerly and shape the plan config.

    Everything that can be misconfigured fails here — at plan/parse time —
    not after a shard has burned its budget: the retry policy, the
    overload model, and the flash-crowd window are all constructed once.
    """
    if num_requests < 1:
        raise ConfigurationError("num_requests must be >= 1")
    if not loads:
        raise ConfigurationError("need at least one load multiplier")
    if any(load <= 0 for load in loads):
        raise ConfigurationError(f"load multipliers must be positive: {loads}")
    _constellation_for(shell)
    RetryPolicy(max_attempts=max_attempts)
    OverloadModel(
        capacity_per_slot=capacity,
        ground_capacity_per_slot=ground_capacity,
        deadline_ms=deadline_ms,
        seed=seed,
    )
    if flash_crowd is not None:
        if len(flash_crowd) != 3:
            raise FaultConfigError(
                f"flash crowd must be (start, end, extra), got {flash_crowd!r}"
            )
        start_s, end_s, extra = (float(x) for x in flash_crowd)
        FlashCrowdProcess(
            extra_requests_per_slot=extra, start_s=start_s, end_s=end_s
        )
    return {
        "experiment": "overload",
        "seed": seed,
        "num_requests": num_requests,
        "loads": sorted(float(load) for load in loads),
        "shell": shell,
        "capacity": capacity,
        "ground_capacity": ground_capacity,
        "deadline_ms": deadline_ms,
        "flash_crowd": (
            None if flash_crowd is None else [float(x) for x in flash_crowd]
        ),
        "max_attempts": max_attempts,
        "batch": batch,
    }


def build_plan(
    seed: int = DEFAULT_SEED,
    num_requests: int = 150,
    loads: tuple[float, ...] = LOAD_MULTIPLIERS,
    shell: str = "shell1",
    capacity: float = 6.0,
    ground_capacity: float = 40.0,
    deadline_ms: float | None = 1500.0,
    flash_crowd=None,
    max_attempts: int = 3,
    batch: bool = True,
) -> ExperimentPlan:
    """Sharded overload sweep: one shard per load multiplier.

    A killed sweep loses at most one load point's system run; inflation
    columns are recomputed at merge time from the checkpointed baseline,
    so resumed output matches an uninterrupted sweep byte for byte.
    """
    config = _validated_config(
        seed, num_requests, loads, shell, capacity, ground_capacity,
        deadline_ms, flash_crowd, max_attempts, batch,
    )
    ordered = tuple(config["loads"])
    shard_ids = tuple(f"load-{i:02d}" for i in range(len(ordered)))
    crowd = None if flash_crowd is None else tuple(float(x) for x in flash_crowd)

    def run_shard(shard_id: str) -> dict:
        load = ordered[shard_ids.index(shard_id)]
        ctx = _sweep_context(seed, shell)
        return _sweep_point(
            ctx, load, seed, num_requests, capacity, ground_capacity,
            deadline_ms, crowd, max_attempts, batch,
        )

    def merge(payloads: dict) -> OverloadResult:
        raw_points = [payloads[shard_id] for shard_id in shard_ids]
        return OverloadResult(shell=shell, points=_points_from_raw(raw_points))

    return ExperimentPlan(
        experiment="overload",
        config=config,
        shard_ids=shard_ids,
        run_shard=run_shard,
        merge=merge,
        format=format_result,
    )


def _fmt_ratio(value: float | None) -> str:
    return "n/a" if value is None else f"{value:.3f}"


def format_result(result: OverloadResult) -> str:
    rows = []
    for p in result.points:
        rows.append(
            (
                f"{p.load:g}x",
                f"{p.offered_rps:.2f}",
                _fmt_ratio(p.availability),
                _fmt_ratio(p.shed_fraction),
                f"{p.goodput_rps:.2f}",
                p.p50_rtt_ms,
                p.p99_rtt_ms,
                f"{p.p50_inflation:.2f}x",
                f"{p.p99_inflation:.2f}x",
            )
        )
    table = format_table(
        (
            "load",
            "offered rps",
            "availability",
            "shed frac",
            "goodput rps",
            "p50 RTT (ms)",
            "p99",
            "p50 infl",
            "p99 infl",
        ),
        rows,
    )
    worst = max(result.points, key=lambda p: p.load)
    return table + (
        f"\nshell: {result.shell}; load {result.baseline.load:g}x = "
        f"{result.baseline.requests} requests over {_STREAM_DURATION_S:g} s"
        f"\nat {worst.load:g}x offered: availability "
        f"{_fmt_ratio(worst.availability)}, shed "
        f"{_fmt_ratio(worst.shed_fraction)} "
        f"({worst.deadline_exhausted} to deadlines), goodput "
        f"{worst.goodput_rps:.2f} rps, {worst.retries} retries / "
        f"{worst.timeouts} timeouts / {worst.unavailable} unavailable"
    )
