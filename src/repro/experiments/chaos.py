"""Chaos sweep: SpaceCDN availability and latency under injected failures.

The paper's Fig. 7/8 pipelines assume a healthy fleet. This experiment
reruns the request-level system under a sweep of satellite-outage
fractions (via :mod:`repro.faults`) and reports, per fraction:
availability, p50/p99 RTT and their inflation over the healthy baseline,
space-tier hit-ratio degradation, and the Fig. 8 duty-cycle median when
the failed satellites also drop out of the cache rotation.

Every sweep point — including 0.0 — runs the same degraded serving path
so the comparison isolates the *faults*, not the code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.analysis.quantiles import sample_quantiles
from repro.analysis.tables import format_table
from repro.cdn.content import Catalog, build_catalog
from repro.constants import CDN_SERVER_THINK_TIME_MS
from repro.errors import ConfigurationError, UnavailableError, VisibilityError
from repro.experiments.common import (
    DEFAULT_SEED,
    shell1_constellation,
    small_constellation,
)
from repro.faults import FaultSchedule, OutageWindow, RetryPolicy
from repro.geo.datasets import all_cities
from repro.obs.recorder import get_recorder
from repro.orbits.walker import Constellation
from repro.runner.shards import ExperimentPlan
from repro.simulation.sampler import seeded_rng, user_sample_points
from repro.spacecdn.bubbles import RegionalPopularity
from repro.spacecdn.dutycycle import DutyCycleLatencyModel, DutyCycleScheduler
from repro.spacecdn.placement import KPerPlanePlacement
from repro.spacecdn.resilience import random_failure_set
from repro.spacecdn.system import SpaceCdnSystem
from repro.topology.graph import build_snapshot
from repro.workloads.regional import RegionalRequestMixer
from repro.workloads.requests import RequestGenerator

FAILURE_FRACTIONS: tuple[float, ...] = (0.0, 0.1, 0.3)

CATALOG_REGIONS: tuple[str, ...] = ("africa", "europe")

_STREAM_DURATION_S = 300.0
"""Request streams span five snapshot slots so faults interact with the
rotating topology, not a single frozen graph."""


@dataclass(frozen=True)
class ChaosPoint:
    """The system's health at one failure fraction."""

    fraction: float
    requests: int
    availability: float | None
    """Served share of all requests; ``None`` when the point saw zero
    requests (no denominator, not a perfect score)."""
    space_hit_ratio: float
    p50_rtt_ms: float
    p99_rtt_ms: float
    p50_inflation: float
    """p50 RTT over the healthy (fraction 0.0) baseline's p50."""
    p99_inflation: float
    timeouts: int
    retries: int
    unavailable: int
    dutycycle_median_ms: float
    """Fig. 8 median RTT when the failed satellites also leave the
    duty-cycle cache rotation (NaN when every sampled user lost coverage)."""


@dataclass(frozen=True)
class ChaosResult:
    """One full failure-fraction sweep."""

    shell: str
    points: tuple[ChaosPoint, ...]

    @property
    def baseline(self) -> ChaosPoint:
        """The healthy sweep point (smallest fraction, normally 0.0)."""
        return min(self.points, key=lambda p: p.fraction)


def _constellation_for(shell: str) -> Constellation:
    if shell == "shell1":
        return shell1_constellation()
    if shell == "small":
        return small_constellation()
    raise ConfigurationError(f"unknown shell {shell!r}; choose 'shell1' or 'small'")


def _build_requests(catalog: Catalog, num_requests: int, seed: int):
    """A time-ordered Poisson stream over the catalog's home regions."""
    cities = tuple(
        c for c in all_cities() if c.country.region in CATALOG_REGIONS
    )
    if not cities:
        raise ConfigurationError("no cities in the catalog regions")
    mixer = RegionalRequestMixer(
        popularity=RegionalPopularity(catalog=catalog, seed=seed),
        rng=seeded_rng(seed, 0xC4A05),
    )
    generator = RequestGenerator(
        cities=cities,
        mixer=mixer,
        requests_per_second_total=num_requests / _STREAM_DURATION_S,
        rng=seeded_rng(seed, 0xC4A06),
    )
    return generator.generate_list(_STREAM_DURATION_S)


def _quantiles(samples: list[float]) -> tuple[float, float]:
    p50, p99 = sample_quantiles(samples, (0.5, 0.99))
    return p50, p99


def _dutycycle_median(
    constellation: Constellation,
    failed: frozenset[int],
    users,
    cache_fraction: float,
    seed: int,
) -> float:
    """Fig. 8's duty-cycle pipeline rerun with ``failed`` satellites gone.

    Users whose sky went dark under the outage are skipped (they are an
    availability loss, not a latency sample); NaN when nobody is covered.
    """
    model = DutyCycleLatencyModel(
        snapshot=build_snapshot(constellation, 0.0),
        scheduler=DutyCycleScheduler(
            total_satellites=len(constellation),
            cache_fraction=cache_fraction,
            seed=seed,
        ),
        failed=failed,
    )
    rtts = []
    for user in users:
        try:
            rtts.append(2.0 * model.one_way_ms(user) + CDN_SERVER_THINK_TIME_MS)
        except (UnavailableError, VisibilityError):
            # Small shells leave gaps even when healthy; a user with no
            # sky coverage is not a latency sample either way.
            continue
    return float(np.median(rtts)) if rtts else float("nan")


@dataclass(eq=False)
class _SweepContext:
    """Shared, fraction-independent artifacts of one chaos sweep."""

    constellation: Constellation
    catalog: Catalog
    requests: list
    preload: dict
    duty_user_points: list


@lru_cache(maxsize=2)
def _sweep_context(
    seed: int, num_requests: int, shell: str, duty_users: int
) -> _SweepContext:
    """Build (once per configuration) everything the sweep points share.

    Cached so the sharded runner, which executes each fraction as its own
    shard, pays the catalog/request/preload construction once per process
    like the monolithic sweep does.
    """
    constellation = _constellation_for(shell)
    catalog = build_catalog(
        seeded_rng(seed, 0xC4A07),
        120,
        regions=CATALOG_REGIONS,
        kind_weights={"web": 1.0},
    )
    placement = KPerPlanePlacement(copies_per_plane=1)
    popular = RegionalPopularity(catalog=catalog, seed=seed)
    return _SweepContext(
        constellation=constellation,
        catalog=catalog,
        requests=_build_requests(catalog, num_requests, seed),
        preload={
            object_id: placement.place_object(object_id, constellation.config)
            for region in popular.regions()
            for object_id in popular.top_objects(region, 10)
        },
        duty_user_points=user_sample_points(seeded_rng(seed, 0xC4A08), duty_users),
    )


def _sweep_point(
    ctx: _SweepContext,
    fraction: float,
    seed: int,
    max_attempts: int,
    duty_cache_fraction: float,
    batch: bool = True,
) -> dict:
    """One failure fraction's raw measurements (inflations are merge-time:
    they compare against the sweep's baseline point)."""
    rec = get_recorder()
    with rec.timer("chaos.sweep_point"):
        constellation = ctx.constellation
        failed = random_failure_set(
            len(constellation), fraction, seeded_rng(seed, 0xFA11)
        )
        system = SpaceCdnSystem(
            constellation=constellation,
            catalog=ctx.catalog,
            cache_bytes_per_satellite=10**9,
            fault_schedule=FaultSchedule().add(OutageWindow(satellites=failed)),
            retry_policy=RetryPolicy(max_attempts=max_attempts),
        )
        system.preload(ctx.preload)
        if rec.enabled:
            # Offered load per simulated-time window: the demand side of the
            # timeline dashboard, recorded before serving so shed/unavailable
            # windows still show what arrived.
            labels = (("fraction", f"{fraction:g}"),)
            for request in ctx.requests:
                rec.window_inc(request.t_s, "repro_offered_total", labels)
        system.run(ctx.requests, continue_on_unavailable=True, batch=batch)
    stats = system.stats
    if rec.enabled and stats.availability is not None:
        rec.set_gauge(
            "repro_chaos_availability",
            stats.availability,
            (("fraction", f"{fraction:g}"),),
        )
    p50, p99 = _quantiles(stats.rtt_samples_ms)
    return {
        "fraction": fraction,
        "requests": stats.requests,
        "availability": stats.availability,
        "space_hit_ratio": stats.space_hit_ratio,
        "p50_rtt_ms": p50,
        "p99_rtt_ms": p99,
        "timeouts": stats.timeouts,
        "retries": stats.retries,
        "unavailable": stats.unavailable,
        "dutycycle_median_ms": _dutycycle_median(
            constellation, failed, ctx.duty_user_points,
            duty_cache_fraction, seed,
        ),
    }


def _points_from_raw(raw_points: list[dict]) -> tuple[ChaosPoint, ...]:
    """Fold raw sweep points (in sorted-fraction order) into ChaosPoints,
    computing p50/p99 inflation against the first non-NaN baseline."""
    points: list[ChaosPoint] = []
    baseline_p50 = baseline_p99 = float("nan")
    for raw in raw_points:
        p50, p99 = raw["p50_rtt_ms"], raw["p99_rtt_ms"]
        if np.isnan(baseline_p50):
            baseline_p50, baseline_p99 = p50, p99
        points.append(
            ChaosPoint(
                p50_inflation=p50 / baseline_p50 if baseline_p50 else float("nan"),
                p99_inflation=p99 / baseline_p99 if baseline_p99 else float("nan"),
                **raw,
            )
        )
    return tuple(points)


def run(
    seed: int = DEFAULT_SEED,
    num_requests: int = 150,
    fractions: tuple[float, ...] = FAILURE_FRACTIONS,
    shell: str = "shell1",
    max_attempts: int = 3,
    duty_cache_fraction: float = 0.5,
    duty_users: int = 12,
    batch: bool = True,
) -> ChaosResult:
    """Sweep satellite-outage fractions over the request-level system.

    ``batch=False`` serves every request through the scalar reference
    ladder instead of cohort batching — slower, but one flag away when
    debugging a suspect vectorised path. Results are identical either way
    (the property suite pins element-wise equality).
    """
    if num_requests < 1:
        raise ConfigurationError("num_requests must be >= 1")
    if not fractions:
        raise ConfigurationError("need at least one failure fraction")
    ctx = _sweep_context(seed, num_requests, shell, duty_users)
    raw_points = [
        _sweep_point(ctx, fraction, seed, max_attempts, duty_cache_fraction, batch)
        for fraction in sorted(fractions)
    ]
    return ChaosResult(shell=shell, points=_points_from_raw(raw_points))


def build_plan(
    seed: int = DEFAULT_SEED,
    num_requests: int = 150,
    fractions: tuple[float, ...] = FAILURE_FRACTIONS,
    shell: str = "shell1",
    max_attempts: int = 3,
    duty_cache_fraction: float = 0.5,
    duty_users: int = 12,
    batch: bool = True,
) -> ExperimentPlan:
    """Sharded chaos sweep: one shard per failure fraction.

    A killed sweep loses at most one fraction's system run; the inflation
    columns are recomputed at merge time from the checkpointed baselines,
    so resumed output matches an uninterrupted sweep byte for byte.
    """
    if num_requests < 1:
        raise ConfigurationError("num_requests must be >= 1")
    if not fractions:
        raise ConfigurationError("need at least one failure fraction")
    # Retry-policy misconfiguration should surface at plan time, before
    # any shard burns its budget discovering it.
    RetryPolicy(max_attempts=max_attempts)
    ordered = tuple(sorted(fractions))
    shard_ids = tuple(f"fraction-{i:02d}" for i in range(len(ordered)))

    def run_shard(shard_id: str) -> dict:
        fraction = ordered[shard_ids.index(shard_id)]
        ctx = _sweep_context(seed, num_requests, shell, duty_users)
        return _sweep_point(
            ctx, fraction, seed, max_attempts, duty_cache_fraction, batch
        )

    def merge(payloads: dict) -> ChaosResult:
        raw_points = [payloads[shard_id] for shard_id in shard_ids]
        return ChaosResult(shell=shell, points=_points_from_raw(raw_points))

    return ExperimentPlan(
        experiment="chaos",
        config={
            "experiment": "chaos",
            "seed": seed,
            "num_requests": num_requests,
            "fractions": list(ordered),
            "shell": shell,
            "max_attempts": max_attempts,
            "duty_cache_fraction": duty_cache_fraction,
            "duty_users": duty_users,
            "batch": batch,
        },
        shard_ids=shard_ids,
        run_shard=run_shard,
        merge=merge,
        format=format_result,
    )


def _fmt_availability(availability: float | None) -> str:
    return "n/a" if availability is None else f"{availability:.3f}"


def format_result(result: ChaosResult) -> str:
    rows = []
    for p in result.points:
        rows.append(
            (
                f"{p.fraction:.0%}",
                _fmt_availability(p.availability),
                p.p50_rtt_ms,
                p.p99_rtt_ms,
                f"{p.p50_inflation:.2f}x",
                f"{p.p99_inflation:.2f}x",
                f"{p.space_hit_ratio:.2f}",
                p.dutycycle_median_ms,
            )
        )
    table = format_table(
        (
            "failed sats",
            "availability",
            "p50 RTT (ms)",
            "p99",
            "p50 infl",
            "p99 infl",
            "space hits",
            "duty p50 (ms)",
        ),
        rows,
    )
    worst = max(result.points, key=lambda p: p.fraction)
    return table + (
        f"\nshell: {result.shell}; {worst.requests} requests per sweep point"
        f"\nat {worst.fraction:.0%} failed: availability "
        f"{_fmt_availability(worst.availability)}, "
        f"p99 inflation {worst.p99_inflation:.2f}x, "
        f"{worst.retries} retries / {worst.timeouts} timeouts / "
        f"{worst.unavailable} unavailable"
    )
