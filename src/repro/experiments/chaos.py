"""Chaos sweep: SpaceCDN availability and latency under injected failures.

The paper's Fig. 7/8 pipelines assume a healthy fleet. This experiment
reruns the request-level system under a sweep of satellite-outage
fractions (via :mod:`repro.faults`) and reports, per fraction:
availability, p50/p99 RTT and their inflation over the healthy baseline,
space-tier hit-ratio degradation, and the Fig. 8 duty-cycle median when
the failed satellites also drop out of the cache rotation.

Every sweep point — including 0.0 — runs the same degraded serving path
so the comparison isolates the *faults*, not the code path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.cdn.content import Catalog, build_catalog
from repro.constants import CDN_SERVER_THINK_TIME_MS
from repro.errors import ConfigurationError, UnavailableError, VisibilityError
from repro.experiments.common import (
    DEFAULT_SEED,
    shell1_constellation,
    small_constellation,
)
from repro.faults import FaultSchedule, OutageWindow, RetryPolicy
from repro.geo.datasets import all_cities
from repro.orbits.walker import Constellation
from repro.simulation.sampler import seeded_rng, user_sample_points
from repro.spacecdn.bubbles import RegionalPopularity
from repro.spacecdn.dutycycle import DutyCycleLatencyModel, DutyCycleScheduler
from repro.spacecdn.placement import KPerPlanePlacement
from repro.spacecdn.resilience import random_failure_set
from repro.spacecdn.system import SpaceCdnSystem
from repro.topology.graph import build_snapshot
from repro.workloads.regional import RegionalRequestMixer
from repro.workloads.requests import RequestGenerator

FAILURE_FRACTIONS: tuple[float, ...] = (0.0, 0.1, 0.3)

CATALOG_REGIONS: tuple[str, ...] = ("africa", "europe")

_STREAM_DURATION_S = 300.0
"""Request streams span five snapshot slots so faults interact with the
rotating topology, not a single frozen graph."""


@dataclass(frozen=True)
class ChaosPoint:
    """The system's health at one failure fraction."""

    fraction: float
    requests: int
    availability: float
    space_hit_ratio: float
    p50_rtt_ms: float
    p99_rtt_ms: float
    p50_inflation: float
    """p50 RTT over the healthy (fraction 0.0) baseline's p50."""
    p99_inflation: float
    timeouts: int
    retries: int
    unavailable: int
    dutycycle_median_ms: float
    """Fig. 8 median RTT when the failed satellites also leave the
    duty-cycle cache rotation (NaN when every sampled user lost coverage)."""


@dataclass(frozen=True)
class ChaosResult:
    """One full failure-fraction sweep."""

    shell: str
    points: tuple[ChaosPoint, ...]

    @property
    def baseline(self) -> ChaosPoint:
        """The healthy sweep point (smallest fraction, normally 0.0)."""
        return min(self.points, key=lambda p: p.fraction)


def _constellation_for(shell: str) -> Constellation:
    if shell == "shell1":
        return shell1_constellation()
    if shell == "small":
        return small_constellation()
    raise ConfigurationError(f"unknown shell {shell!r}; choose 'shell1' or 'small'")


def _build_requests(catalog: Catalog, num_requests: int, seed: int):
    """A time-ordered Poisson stream over the catalog's home regions."""
    cities = tuple(
        c for c in all_cities() if c.country.region in CATALOG_REGIONS
    )
    if not cities:
        raise ConfigurationError("no cities in the catalog regions")
    mixer = RegionalRequestMixer(
        popularity=RegionalPopularity(catalog=catalog, seed=seed),
        rng=seeded_rng(seed, 0xC4A05),
    )
    generator = RequestGenerator(
        cities=cities,
        mixer=mixer,
        requests_per_second_total=num_requests / _STREAM_DURATION_S,
        rng=seeded_rng(seed, 0xC4A06),
    )
    return generator.generate_list(_STREAM_DURATION_S)


def _quantiles(samples: list[float]) -> tuple[float, float]:
    if not samples:
        return float("nan"), float("nan")
    arr = np.asarray(samples)
    return float(np.quantile(arr, 0.5)), float(np.quantile(arr, 0.99))


def _dutycycle_median(
    constellation: Constellation,
    failed: frozenset[int],
    users,
    cache_fraction: float,
    seed: int,
) -> float:
    """Fig. 8's duty-cycle pipeline rerun with ``failed`` satellites gone.

    Users whose sky went dark under the outage are skipped (they are an
    availability loss, not a latency sample); NaN when nobody is covered.
    """
    model = DutyCycleLatencyModel(
        snapshot=build_snapshot(constellation, 0.0),
        scheduler=DutyCycleScheduler(
            total_satellites=len(constellation),
            cache_fraction=cache_fraction,
            seed=seed,
        ),
        failed=failed,
    )
    rtts = []
    for user in users:
        try:
            rtts.append(2.0 * model.one_way_ms(user) + CDN_SERVER_THINK_TIME_MS)
        except (UnavailableError, VisibilityError):
            # Small shells leave gaps even when healthy; a user with no
            # sky coverage is not a latency sample either way.
            continue
    return float(np.median(rtts)) if rtts else float("nan")


def run(
    seed: int = DEFAULT_SEED,
    num_requests: int = 150,
    fractions: tuple[float, ...] = FAILURE_FRACTIONS,
    shell: str = "shell1",
    max_attempts: int = 3,
    duty_cache_fraction: float = 0.5,
    duty_users: int = 12,
) -> ChaosResult:
    """Sweep satellite-outage fractions over the request-level system."""
    if num_requests < 1:
        raise ConfigurationError("num_requests must be >= 1")
    if not fractions:
        raise ConfigurationError("need at least one failure fraction")
    constellation = _constellation_for(shell)
    catalog = build_catalog(
        seeded_rng(seed, 0xC4A07),
        120,
        regions=CATALOG_REGIONS,
        kind_weights={"web": 1.0},
    )
    requests = _build_requests(catalog, num_requests, seed)
    placement = KPerPlanePlacement(copies_per_plane=1)
    popular = RegionalPopularity(catalog=catalog, seed=seed)
    preload = {
        object_id: placement.place_object(object_id, constellation.config)
        for region in popular.regions()
        for object_id in popular.top_objects(region, 10)
    }
    duty_user_points = user_sample_points(seeded_rng(seed, 0xC4A08), duty_users)

    points: list[ChaosPoint] = []
    baseline_p50 = baseline_p99 = float("nan")
    for fraction in sorted(fractions):
        failed = random_failure_set(
            len(constellation), fraction, seeded_rng(seed, 0xFA11)
        )
        system = SpaceCdnSystem(
            constellation=constellation,
            catalog=catalog,
            cache_bytes_per_satellite=10**9,
            fault_schedule=FaultSchedule().add(OutageWindow(satellites=failed)),
            retry_policy=RetryPolicy(max_attempts=max_attempts),
        )
        system.preload(preload)
        system.run(requests, continue_on_unavailable=True)
        stats = system.stats
        p50, p99 = _quantiles(stats.rtt_samples_ms)
        if np.isnan(baseline_p50):
            baseline_p50, baseline_p99 = p50, p99
        points.append(
            ChaosPoint(
                fraction=fraction,
                requests=stats.requests,
                availability=stats.availability,
                space_hit_ratio=stats.space_hit_ratio,
                p50_rtt_ms=p50,
                p99_rtt_ms=p99,
                p50_inflation=p50 / baseline_p50 if baseline_p50 else float("nan"),
                p99_inflation=p99 / baseline_p99 if baseline_p99 else float("nan"),
                timeouts=stats.timeouts,
                retries=stats.retries,
                unavailable=stats.unavailable,
                dutycycle_median_ms=_dutycycle_median(
                    constellation, failed, duty_user_points,
                    duty_cache_fraction, seed,
                ),
            )
        )
    return ChaosResult(shell=shell, points=tuple(points))


def format_result(result: ChaosResult) -> str:
    rows = []
    for p in result.points:
        rows.append(
            (
                f"{p.fraction:.0%}",
                f"{p.availability:.3f}",
                p.p50_rtt_ms,
                p.p99_rtt_ms,
                f"{p.p50_inflation:.2f}x",
                f"{p.p99_inflation:.2f}x",
                f"{p.space_hit_ratio:.2f}",
                p.dutycycle_median_ms,
            )
        )
    table = format_table(
        (
            "failed sats",
            "availability",
            "p50 RTT (ms)",
            "p99",
            "p50 infl",
            "p99 infl",
            "space hits",
            "duty p50 (ms)",
        ),
        rows,
    )
    worst = max(result.points, key=lambda p: p.fraction)
    return table + (
        f"\nshell: {result.shell}; {worst.requests} requests per sweep point"
        f"\nat {worst.fraction:.0%} failed: availability {worst.availability:.3f}, "
        f"p99 inflation {worst.p99_inflation:.2f}x, "
        f"{worst.retries} retries / {worst.timeouts} timeouts / "
        f"{worst.unavailable} unavailable"
    )
