"""Figure 8: SpaceCDN latency under duty-cycled caches.

With only x% of satellites caching at a time (the rest relaying), the paper
finds SpaceCDN stays competitive with the terrestrial-ISP median once
x >= 50%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import DistributionSummary, median_or_nan, summarize
from repro.analysis.tables import format_table
from repro.constants import CDN_SERVER_THINK_TIME_MS
from repro.errors import ConfigurationError
from repro.experiments.common import (
    DEFAULT_SEED,
    aim_dataset,
    shell1_constellation,
    shell1_epochs,
    shell1_snapshot,
)
from repro.measurements.aim import TERRESTRIAL
from repro.simulation.sampler import seeded_rng, user_sample_points
from repro.spacecdn.dutycycle import DutyCycleLatencyModel, DutyCycleScheduler

CACHE_FRACTIONS: tuple[float, ...] = (0.3, 0.5, 0.8)


@dataclass(frozen=True)
class Figure8Result:
    """RTT distributions per cache fraction, plus the terrestrial reference."""

    rtt_summaries: dict[float, DistributionSummary]
    rtt_samples_ms: dict[float, list[float]]
    terrestrial_median_ms: float

    COMPETITIVE_TOLERANCE = 1.15
    """A fraction is "competitive" when its median RTT is within 15% of the
    terrestrial median (the paper's Fig. 8 judges this visually: the
    terrestrial line passes through the 50% box)."""

    def competitive_fractions(self) -> list[float]:
        """Cache fractions whose median RTT is competitive with terrestrial."""
        threshold = self.terrestrial_median_ms * self.COMPETITIVE_TOLERANCE
        return sorted(
            f for f, s in self.rtt_summaries.items() if s.median <= threshold
        )


def run(
    seed: int = DEFAULT_SEED,
    users_per_epoch: int = 20,
    num_epochs: int = 4,
    fractions: tuple[float, ...] = CACHE_FRACTIONS,
) -> Figure8Result:
    """Regenerate Fig. 8: latency vs duty-cycle cache fraction."""
    if users_per_epoch < 1 or num_epochs < 1:
        raise ConfigurationError("users_per_epoch and num_epochs must be >= 1")
    constellation = shell1_constellation()
    rng = seeded_rng(seed, 0xF18)

    samples: dict[float, list[float]] = {f: [] for f in fractions}
    for epoch in shell1_epochs(num_epochs, seed):
        snapshot = shell1_snapshot(epoch)
        users = user_sample_points(rng, users_per_epoch)
        for fraction in fractions:
            model = DutyCycleLatencyModel(
                snapshot=snapshot,
                scheduler=DutyCycleScheduler(
                    total_satellites=len(constellation),
                    cache_fraction=fraction,
                    seed=seed,
                ),
            )
            one_way = model.one_way_ms_batch(users)
            samples[fraction].extend(
                float(v) for v in 2.0 * one_way + CDN_SERVER_THINK_TIME_MS
            )

    dataset = aim_dataset(seed)
    terrestrial_median = median_or_nan(dataset.all_rtts(TERRESTRIAL))
    return Figure8Result(
        rtt_summaries={f: summarize(s) for f, s in samples.items()},
        rtt_samples_ms=samples,
        terrestrial_median_ms=terrestrial_median,
    )


def format_result(result: Figure8Result) -> str:
    rows = []
    for fraction in sorted(result.rtt_summaries):
        s = result.rtt_summaries[fraction]
        rows.append((f"{fraction:.0%}", s.p25, s.median, s.p75, s.p95))
    table = format_table(
        ("caching sats", "p25 RTT (ms)", "median", "p75", "p95"), rows
    )
    return table + (
        f"\nterrestrial median reference: {result.terrestrial_median_ms:.1f} ms"
        f"\ncompetitive fractions: {[f'{f:.0%}' for f in result.competitive_fractions()]}"
    )
