"""Figure 8: SpaceCDN latency under duty-cycled caches.

With only x% of satellites caching at a time (the rest relaying), the paper
finds SpaceCDN stays competitive with the terrestrial-ISP median once
x >= 50%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import DistributionSummary, median_or_nan, summarize
from repro.analysis.tables import format_table
from repro.constants import CDN_SERVER_THINK_TIME_MS
from repro.errors import ConfigurationError
from repro.experiments.common import (
    DEFAULT_SEED,
    aim_dataset,
    shell1_constellation,
    shell1_epochs,
    shell1_snapshot,
)
from repro.geo.coordinates import GeoPoint
from repro.measurements.aim import TERRESTRIAL
from repro.obs.recorder import get_recorder
from repro.runner.shards import ExperimentPlan
from repro.simulation.sampler import seeded_rng, user_sample_points
from repro.spacecdn.dutycycle import DutyCycleLatencyModel, DutyCycleScheduler

CACHE_FRACTIONS: tuple[float, ...] = (0.3, 0.5, 0.8)


@dataclass(frozen=True)
class Figure8Result:
    """RTT distributions per cache fraction, plus the terrestrial reference."""

    rtt_summaries: dict[float, DistributionSummary]
    rtt_samples_ms: dict[float, list[float]]
    terrestrial_median_ms: float

    COMPETITIVE_TOLERANCE = 1.15
    """A fraction is "competitive" when its median RTT is within 15% of the
    terrestrial median (the paper's Fig. 8 judges this visually: the
    terrestrial line passes through the 50% box)."""

    def competitive_fractions(self) -> list[float]:
        """Cache fractions whose median RTT is competitive with terrestrial."""
        threshold = self.terrestrial_median_ms * self.COMPETITIVE_TOLERANCE
        return sorted(
            f for f, s in self.rtt_summaries.items() if s.median <= threshold
        )


def run(
    seed: int = DEFAULT_SEED,
    users_per_epoch: int = 20,
    num_epochs: int = 4,
    fractions: tuple[float, ...] = CACHE_FRACTIONS,
    batch: bool = True,
) -> Figure8Result:
    """Regenerate Fig. 8: latency vs duty-cycle cache fraction.

    ``batch=False`` resolves each user through the scalar duty-cycle
    lookup instead of the vectorised cohort pass (the debugging reference).
    """
    if users_per_epoch < 1 or num_epochs < 1:
        raise ConfigurationError("users_per_epoch and num_epochs must be >= 1")
    rng = seeded_rng(seed, 0xF18)

    samples: dict[float, list[float]] = {f: [] for f in fractions}
    for epoch in shell1_epochs(num_epochs, seed):
        users = user_sample_points(rng, users_per_epoch)
        per_epoch = epoch_fraction_samples(epoch, users, fractions, seed, batch)
        for fraction in fractions:
            samples[fraction].extend(per_epoch[fraction])

    dataset = aim_dataset(seed)
    terrestrial_median = median_or_nan(dataset.all_rtts(TERRESTRIAL))
    return Figure8Result(
        rtt_summaries={f: summarize(s) for f, s in samples.items()},
        rtt_samples_ms=samples,
        terrestrial_median_ms=terrestrial_median,
    )


def epoch_fraction_samples(
    epoch: float,
    users: list[GeoPoint],
    fractions: tuple[float, ...],
    seed: int,
    batch: bool = True,
) -> dict[float, list[float]]:
    """One epoch's RTT samples per cache fraction (the sharding unit)."""
    constellation = shell1_constellation()
    snapshot = shell1_snapshot(epoch)
    rec = get_recorder()
    samples: dict[float, list[float]] = {}
    for fraction in fractions:
        model = DutyCycleLatencyModel(
            snapshot=snapshot,
            scheduler=DutyCycleScheduler(
                total_satellites=len(constellation),
                cache_fraction=fraction,
                seed=seed,
            ),
        )
        if batch:
            one_way = model.one_way_ms_batch(users)
            samples[fraction] = [
                float(v) for v in 2.0 * one_way + CDN_SERVER_THINK_TIME_MS
            ]
        else:
            samples[fraction] = [
                float(2.0 * model.one_way_ms(user) + CDN_SERVER_THINK_TIME_MS)
                for user in users
            ]
        if rec.enabled:
            # Windowed by the epoch's simulated instant, so the per-epoch
            # shards of a --jobs run merge into the same timeline the
            # monolithic sweep records.
            labels = (("fraction", f"{fraction:g}"),)
            for rtt_ms in samples[fraction]:
                rec.window_observe(
                    epoch, "repro_figure8_rtt_ms", rtt_ms, labels
                )
    return samples


def build_plan(
    seed: int = DEFAULT_SEED,
    users_per_epoch: int = 20,
    num_epochs: int = 4,
    fractions: tuple[float, ...] = CACHE_FRACTIONS,
    batch: bool = True,
) -> ExperimentPlan:
    """Sharded Fig. 8: one shard per epoch plus the terrestrial reference.

    Epoch shards draw users from ``seeded_rng(seed, 0xF18, epoch_index)``
    so each is recomputable in isolation after a crash or preemption.
    """
    if users_per_epoch < 1 or num_epochs < 1:
        raise ConfigurationError("users_per_epoch and num_epochs must be >= 1")
    epoch_ids = tuple(f"epoch-{i:04d}" for i in range(num_epochs))

    def run_shard(shard_id: str) -> dict:
        if shard_id == "aim":
            dataset = aim_dataset(seed)
            return {
                "terrestrial_median": median_or_nan(dataset.all_rtts(TERRESTRIAL))
            }
        index = epoch_ids.index(shard_id)
        epoch = shell1_epochs(num_epochs, seed)[index]
        users = user_sample_points(seeded_rng(seed, 0xF18, index), users_per_epoch)
        per_epoch = epoch_fraction_samples(epoch, users, fractions, seed, batch)
        return {"samples": [[f, per_epoch[f]] for f in fractions]}

    def merge(payloads: dict) -> Figure8Result:
        samples: dict[float, list[float]] = {f: [] for f in fractions}
        for shard_id in epoch_ids:
            for fraction, values in payloads[shard_id]["samples"]:
                samples[float(fraction)].extend(values)
        return Figure8Result(
            rtt_summaries={f: summarize(s) for f, s in samples.items()},
            rtt_samples_ms=samples,
            terrestrial_median_ms=payloads["aim"]["terrestrial_median"],
        )

    return ExperimentPlan(
        experiment="figure8",
        config={
            "experiment": "figure8",
            "seed": seed,
            "users_per_epoch": users_per_epoch,
            "num_epochs": num_epochs,
            "fractions": list(fractions),
            "batch": batch,
        },
        shard_ids=("aim",) + epoch_ids,
        run_shard=run_shard,
        merge=merge,
        format=format_result,
    )


def format_result(result: Figure8Result) -> str:
    rows = []
    for fraction in sorted(result.rtt_summaries):
        s = result.rtt_summaries[fraction]
        rows.append((f"{fraction:.0%}", s.p25, s.median, s.p75, s.p95))
    table = format_table(
        ("caching sats", "p25 RTT (ms)", "median", "p75", "p95"), rows
    )
    return table + (
        f"\nterrestrial median reference: {result.terrestrial_median_ms:.1f} ms"
        f"\ncompetitive fractions: {[f'{f:.0%}' for f in result.competitive_fractions()]}"
    )
