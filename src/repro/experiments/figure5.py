"""Figure 5: first-contentful-paint distributions in Germany and the UK.

Both countries host local Starlink PoPs — the best case — yet the paper
still finds Starlink median FCP ~200 ms higher than terrestrial, because
every round trip of the render-critical path pays the access-latency gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import DistributionSummary, summarize
from repro.analysis.tables import format_table
from repro.errors import ConfigurationError
from repro.experiments.common import DEFAULT_SEED
from repro.geo.datasets import cities_in_country
from repro.measurements.aim import STARLINK, TERRESTRIAL
from repro.measurements.netmet import NetMetProbe

FIGURE5_COUNTRIES: tuple[str, ...] = ("DE", "GB")


@dataclass(frozen=True)
class Figure5Result:
    """FCP distributions per (country, ISP class)."""

    fcp_summaries: dict[tuple[str, str], DistributionSummary]

    def median_gap_ms(self, iso2: str) -> float:
        """Starlink median FCP minus terrestrial median FCP for a country."""
        return (
            self.fcp_summaries[(iso2, STARLINK)].median
            - self.fcp_summaries[(iso2, TERRESTRIAL)].median
        )


def run(
    seed: int = DEFAULT_SEED,
    rounds: int = 3,
    countries: tuple[str, ...] = FIGURE5_COUNTRIES,
) -> Figure5Result:
    """Collect FCP samples for both ISP classes in the Fig. 5 countries."""
    if rounds < 1:
        raise ConfigurationError("rounds must be >= 1")
    probe = NetMetProbe(seed=seed)
    summaries: dict[tuple[str, str], DistributionSummary] = {}
    for iso2 in countries:
        cities = cities_in_country(iso2)
        if not cities:
            raise ConfigurationError(f"no gazetteer city in {iso2}")
        for isp in (STARLINK, TERRESTRIAL):
            samples: list[float] = []
            for city in cities:
                samples.extend(r.fcp_ms for r in probe.browse(city, isp, rounds))
            summaries[(iso2, isp)] = summarize(samples)
    return Figure5Result(fcp_summaries=summaries)


def format_result(result: Figure5Result) -> str:
    rows = []
    for (iso2, isp), summary in sorted(result.fcp_summaries.items()):
        rows.append(
            (iso2, isp, summary.p25, summary.median, summary.p75, summary.p95)
        )
    table = format_table(
        ("Country", "ISP", "p25 FCP (ms)", "median", "p75", "p95"), rows
    )
    gaps = "\n".join(
        f"{iso2}: Starlink median FCP higher by {result.median_gap_ms(iso2):.0f} ms"
        for iso2 in sorted({k[0] for k in result.fcp_summaries})
    )
    return table + "\n" + gaps
