"""Figure 5: first-contentful-paint distributions in Germany and the UK.

Both countries host local Starlink PoPs — the best case — yet the paper
still finds Starlink median FCP ~200 ms higher than terrestrial, because
every round trip of the render-critical path pays the access-latency gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import DistributionSummary, summarize
from repro.analysis.tables import format_table
from repro.errors import ConfigurationError
from repro.experiments.common import DEFAULT_SEED
from repro.geo.datasets import cities_in_country
from repro.measurements.aim import STARLINK, TERRESTRIAL
from repro.measurements.netmet import NetMetProbe
from repro.runner.shards import ExperimentPlan

FIGURE5_COUNTRIES: tuple[str, ...] = ("DE", "GB")


@dataclass(frozen=True)
class Figure5Result:
    """FCP distributions per (country, ISP class)."""

    fcp_summaries: dict[tuple[str, str], DistributionSummary]

    def median_gap_ms(self, iso2: str) -> float:
        """Starlink median FCP minus terrestrial median FCP for a country."""
        return (
            self.fcp_summaries[(iso2, STARLINK)].median
            - self.fcp_summaries[(iso2, TERRESTRIAL)].median
        )


def run(
    seed: int = DEFAULT_SEED,
    rounds: int = 3,
    countries: tuple[str, ...] = FIGURE5_COUNTRIES,
) -> Figure5Result:
    """Collect FCP samples for both ISP classes in the Fig. 5 countries."""
    if rounds < 1:
        raise ConfigurationError("rounds must be >= 1")
    probe = NetMetProbe(seed=seed)
    summaries: dict[tuple[str, str], DistributionSummary] = {}
    for iso2 in countries:
        for isp, samples in _country_fcp_samples(probe, iso2, rounds).items():
            summaries[(iso2, isp)] = summarize(samples)
    return Figure5Result(fcp_summaries=summaries)


def _country_fcp_samples(
    probe: NetMetProbe, iso2: str, rounds: int
) -> dict[str, list[float]]:
    """FCP samples per ISP class for one country's gazetteer cities."""
    cities = cities_in_country(iso2)
    if not cities:
        raise ConfigurationError(f"no gazetteer city in {iso2}")
    samples: dict[str, list[float]] = {}
    for isp in (STARLINK, TERRESTRIAL):
        per_isp: list[float] = []
        for city in cities:
            per_isp.extend(r.fcp_ms for r in probe.browse(city, isp, rounds))
        samples[isp] = per_isp
    return samples


def build_plan(
    seed: int = DEFAULT_SEED,
    rounds: int = 3,
    countries: tuple[str, ...] = FIGURE5_COUNTRIES,
) -> ExperimentPlan:
    """Sharded Fig. 5: one shard per country, each with a fresh probe."""
    if rounds < 1:
        raise ConfigurationError("rounds must be >= 1")
    shard_ids = tuple(f"country-{iso2}" for iso2 in countries)

    def run_shard(shard_id: str) -> dict:
        iso2 = countries[shard_ids.index(shard_id)]
        probe = NetMetProbe(seed=seed)
        return {"samples": _country_fcp_samples(probe, iso2, rounds)}

    def merge(payloads: dict) -> Figure5Result:
        summaries: dict[tuple[str, str], DistributionSummary] = {}
        for iso2, shard_id in zip(countries, shard_ids):
            for isp, samples in payloads[shard_id]["samples"].items():
                summaries[(iso2, isp)] = summarize(samples)
        return Figure5Result(fcp_summaries=summaries)

    return ExperimentPlan(
        experiment="figure5",
        config={
            "experiment": "figure5",
            "seed": seed,
            "rounds": rounds,
            "countries": list(countries),
        },
        shard_ids=shard_ids,
        run_shard=run_shard,
        merge=merge,
        format=format_result,
    )


def format_result(result: Figure5Result) -> str:
    rows = []
    for (iso2, isp), summary in sorted(result.fcp_summaries.items()):
        rows.append(
            (iso2, isp, summary.p25, summary.median, summary.p75, summary.p95)
        )
    table = format_table(
        ("Country", "ISP", "p25 FCP (ms)", "median", "p75", "p95"), rows
    )
    gaps = "\n".join(
        f"{iso2}: Starlink median FCP higher by {result.median_gap_ms(iso2):.0f} ms"
        for iso2 in sorted({k[0] for k in result.fcp_summaries})
    )
    return table + "\n" + gaps
