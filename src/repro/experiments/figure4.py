"""Figure 4: HTTP response time difference, Starlink minus terrestrial.

The paper plots per-country CDFs of the HRT difference for clients measured
on both networks: terrestrial typically wins by 20-50 ms (up to ~100 ms),
with Nigeria the lone country where Starlink is faster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import Cdf
from repro.analysis.tables import format_table
from repro.errors import ConfigurationError
from repro.experiments.common import DEFAULT_SEED
from repro.geo.datasets import cities_in_country
from repro.measurements.aim import STARLINK, TERRESTRIAL
from repro.measurements.netmet import NetMetProbe
from repro.runner.shards import ExperimentPlan
from repro.simulation.sampler import seeded_rng

# Countries highlighted in the paper's Fig. 4 legend.
FIGURE4_COUNTRIES: tuple[str, ...] = ("US", "CA", "GB", "DE", "NG")


@dataclass(frozen=True)
class Figure4Result:
    """Per-country HRT-difference distributions."""

    differences_ms: dict[str, list[float]]

    def cdf(self, iso2: str) -> Cdf:
        return Cdf.from_samples(self.differences_ms[iso2])

    def median_difference_ms(self, iso2: str) -> float:
        return float(np.median(self.differences_ms[iso2]))

    def countries_where_starlink_faster(self) -> list[str]:
        """Countries whose median HRT difference favours Starlink."""
        return sorted(
            iso2
            for iso2 in self.differences_ms
            if self.median_difference_ms(iso2) < 0
        )


def run(
    seed: int = DEFAULT_SEED,
    rounds: int = 3,
    countries: tuple[str, ...] = FIGURE4_COUNTRIES,
) -> Figure4Result:
    """Browse the top pages per country on both ISPs; difference the HRTs.

    Starlink and terrestrial records are paired at random (the paper's
    crowdsourced measurements are likewise not synchronised pairs).
    """
    if rounds < 1:
        raise ConfigurationError("rounds must be >= 1")
    probe = NetMetProbe(seed=seed)
    pair_rng = seeded_rng(seed, 0xF16)
    differences: dict[str, list[float]] = {}
    for iso2 in countries:
        differences[iso2] = _country_differences(probe, pair_rng, iso2, rounds)
    return Figure4Result(differences_ms=differences)


def _country_differences(
    probe: NetMetProbe, pair_rng, iso2: str, rounds: int
) -> list[float]:
    """One country's randomly paired HRT differences."""
    cities = cities_in_country(iso2)
    if not cities:
        raise ConfigurationError(f"no gazetteer city in {iso2}")
    starlink_hrts: list[float] = []
    terrestrial_hrts: list[float] = []
    for city in cities:
        starlink_hrts.extend(
            r.http_response_ms for r in probe.browse(city, STARLINK, rounds)
        )
        terrestrial_hrts.extend(
            r.http_response_ms for r in probe.browse(city, TERRESTRIAL, rounds)
        )
    paired = min(len(starlink_hrts), len(terrestrial_hrts))
    star = pair_rng.permutation(np.asarray(starlink_hrts))[:paired]
    terr = pair_rng.permutation(np.asarray(terrestrial_hrts))[:paired]
    return [float(d) for d in star - terr]


def build_plan(
    seed: int = DEFAULT_SEED,
    rounds: int = 3,
    countries: tuple[str, ...] = FIGURE4_COUNTRIES,
) -> ExperimentPlan:
    """Sharded Fig. 4: one shard per highlighted country, each browsing
    with its own probe and pairing stream derived from (seed, country)."""
    if rounds < 1:
        raise ConfigurationError("rounds must be >= 1")
    shard_ids = tuple(f"country-{iso2}" for iso2 in countries)

    def run_shard(shard_id: str) -> dict:
        index = shard_ids.index(shard_id)
        iso2 = countries[index]
        probe = NetMetProbe(seed=seed)
        pair_rng = seeded_rng(seed, 0xF16, index)
        return {"differences_ms": _country_differences(probe, pair_rng, iso2, rounds)}

    def merge(payloads: dict) -> Figure4Result:
        return Figure4Result(
            differences_ms={
                iso2: payloads[shard_id]["differences_ms"]
                for iso2, shard_id in zip(countries, shard_ids)
            }
        )

    return ExperimentPlan(
        experiment="figure4",
        config={
            "experiment": "figure4",
            "seed": seed,
            "rounds": rounds,
            "countries": list(countries),
        },
        shard_ids=shard_ids,
        run_shard=run_shard,
        merge=merge,
        format=format_result,
    )


def format_result(result: Figure4Result) -> str:
    rows = []
    for iso2, samples in sorted(result.differences_ms.items()):
        cdf = Cdf.from_samples(samples)
        rows.append(
            (
                iso2,
                cdf.quantile(0.25),
                cdf.quantile(0.5),
                cdf.quantile(0.75),
                cdf.at(0.0),
            )
        )
    table = format_table(
        ("Country", "p25 diff (ms)", "median diff (ms)", "p75 diff (ms)", "P(starlink faster)"),
        rows,
        float_fmt="{:.2f}",
    )
    faster = result.countries_where_starlink_faster()
    return table + f"\nStarlink faster (median) in: {faster or 'none'}"
