"""Experiment harness: one module per table/figure of the paper's evaluation.

Each module exposes ``run(...) -> <Result dataclass>`` and
``format_result(result) -> str``; the benchmarks call ``run`` and print the
formatted rows so every paper artifact can be regenerated from the command
line.
"""

from repro.experiments import (  # noqa: F401
    chaos,
    common,
    table1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure7,
    figure8,
    geoblocking,
    overload,
)

__all__ = [
    "chaos",
    "overload",
    "common",
    "table1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure7",
    "figure8",
    "geoblocking",
]
