"""Geo-blocking prevalence for Starlink users (quantifying §2's claim).

The paper cites "unwarranted geo-blocking from CDNs when connections are
routed to PoPs deployed in countries where the requested content is
geo-blocked". This experiment licenses, for every covered country, a
synthetic catalog of home-market content (licensed to the country and its
region's neighbours) and measures which Starlink subscriber populations get
misblocked — blocked despite being physically inside the licence area.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.cdn.geoblock import GeoBlockPolicy
from repro.geo.datasets import (
    City,
    all_cities,
    assigned_pop,
    country_by_iso2,
    starlink_covered_countries,
)
from repro.runner.shards import ExperimentPlan


@dataclass(frozen=True)
class GeoblockResult:
    """Per-country misblock verdicts for home-market content."""

    misblocked: dict[str, bool]
    """Whether the country's Starlink users lose their own home content."""
    exit_countries: dict[str, str]
    """Where each country's traffic appears to come from."""

    def misblock_rate(self) -> float:
        """Fraction of covered countries whose users lose home content."""
        if not self.misblocked:
            return 0.0
        return sum(self.misblocked.values()) / len(self.misblocked)

    def affected_countries(self) -> list[str]:
        return sorted(iso2 for iso2, bad in self.misblocked.items() if bad)


def _license_countries(iso2: str) -> set[str]:
    """A home-market licence: the country plus same-region covered countries."""
    region = country_by_iso2(iso2).region
    peers = {
        c.iso2
        for c in starlink_covered_countries()
        if country_by_iso2(c.iso2).region == region
    }
    peers.add(iso2)
    return peers


def run() -> GeoblockResult:
    """Check every covered country's home content for its own Starlink users."""
    policy = GeoBlockPolicy()
    cities_by_country: dict[str, City] = {}
    for city in all_cities():
        cities_by_country.setdefault(city.iso2, city)

    misblocked: dict[str, bool] = {}
    exits: dict[str, str] = {}
    for country in starlink_covered_countries():
        city = cities_by_country.get(country.iso2)
        if city is None:
            continue
        object_id = f"home-content-{country.iso2}"
        policy.license_object(object_id, _license_countries(country.iso2))
        decision = policy.check_starlink(object_id, city)
        misblocked[country.iso2] = decision.misblocked
        exits[country.iso2] = assigned_pop(
            country.iso2, city.lat_deg, city.lon_deg
        ).iso2
    return GeoblockResult(misblocked=misblocked, exit_countries=exits)


def build_plan() -> ExperimentPlan:
    """Sharded geo-blocking check: a single shard (the experiment is one
    cheap deterministic pass), still checkpointed like every other run."""

    def run_shard(shard_id: str) -> dict:
        result = run()
        return {
            "misblocked": result.misblocked,
            "exit_countries": result.exit_countries,
        }

    def merge(payloads: dict) -> GeoblockResult:
        payload = payloads["all"]
        return GeoblockResult(
            misblocked={k: bool(v) for k, v in payload["misblocked"].items()},
            exit_countries=dict(payload["exit_countries"]),
        )

    return ExperimentPlan(
        experiment="geoblocking",
        config={"experiment": "geoblocking"},
        shard_ids=("all",),
        run_shard=run_shard,
        merge=merge,
        format=format_result,
    )


def format_result(result: GeoblockResult) -> str:
    rows = [
        (
            country_by_iso2(iso2).name,
            iso2,
            result.exit_countries[iso2],
            "MISBLOCKED" if result.misblocked[iso2] else "ok",
        )
        for iso2 in sorted(result.misblocked)
        if result.misblocked[iso2]
    ]
    table = format_table(("Country", "ISO", "exits in", "home content"), rows)
    return table + (
        f"\n{result.misblock_rate():.0%} of covered countries lose access to "
        "their own region-licensed content over Starlink"
    )
