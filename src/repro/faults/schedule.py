"""Composing fault processes into per-snapshot masks.

A :class:`FaultSchedule` owns a bag of fault processes (satellite outages,
ISL cuts and degradation, ground outages, transient per-attempt loss) and
compiles them, at any simulated instant, into a :class:`FaultView` — plain
masks and weight multipliers that the CSR routing core consumes directly.
:func:`apply_fault_view` turns a healthy snapshot into its degraded sibling
for the price of a node-mask union and one O(E) weight pass; the expensive
artifacts (positions, CSR topology) are always shared, never rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FaultConfigError
from repro.faults.processes import TransientAttemptLoss
from repro.obs.recorder import get_recorder
from repro.topology.graph import SnapshotGraph


@dataclass(frozen=True, eq=False)
class FaultView:
    """The compiled fault state at one instant.

    Everything the serving stack needs to degrade a snapshot: satellites to
    mask, links to cut, per-link latency multipliers (``None`` when no
    degradation is active), and the ground-segment state.
    """

    t_s: float
    failed_satellites: frozenset[int] = frozenset()
    cut_links: frozenset[int] = frozenset()
    link_multiplier: np.ndarray | None = None
    failed_grounds: frozenset[str] = frozenset()
    ground_segment_down: bool = False

    @property
    def is_clean(self) -> bool:
        """Whether this view degrades nothing at all."""
        return (
            not self.failed_satellites
            and not self.cut_links
            and self.link_multiplier is None
            and not self.failed_grounds
            and not self.ground_segment_down
        )


_ROLES = ("satellite", "link", "ground", "load")


def _role_of(process) -> str:
    """Classify a fault process by the query surface it implements."""
    if hasattr(process, "background_load"):
        return "load"
    if hasattr(process, "cut_links") or hasattr(process, "latency_multiplier"):
        return "link"
    if hasattr(process, "failed_grounds") or hasattr(process, "ground_segment_down"):
        return "ground"
    if hasattr(process, "failed_satellites"):
        return "satellite"
    raise FaultConfigError(
        f"{type(process).__name__} implements no fault-process interface"
    )


@dataclass
class FaultSchedule:
    """A composition of fault processes over simulation time.

    ``add`` dispatches processes to their role by duck type; ``compile_at``
    unions every process's answer into one :class:`FaultView`.
    ``wipe_caches_on_outage`` controls whether a satellite dropping out of
    the fleet (thermal duty-cycle exit, failure) loses its cache contents —
    on by default, since on-board caches do not survive a power cycle.
    """

    satellite_processes: list = field(default_factory=list)
    link_processes: list = field(default_factory=list)
    ground_processes: list = field(default_factory=list)
    load_processes: list = field(default_factory=list)
    attempt_loss: TransientAttemptLoss | None = None
    wipe_caches_on_outage: bool = True

    def add(self, process) -> "FaultSchedule":
        """Register a fault process; returns ``self`` for chaining."""
        if isinstance(process, TransientAttemptLoss):
            if self.attempt_loss is not None:
                raise FaultConfigError("only one attempt-loss process is allowed")
            self.attempt_loss = process
            return self
        role = _role_of(process)
        getattr(self, f"{role}_processes").append(process)
        return self

    @property
    def is_empty(self) -> bool:
        """Whether no *fault* process is registered (the healthy schedule).

        Load processes (flash crowds) deliberately do not count: they
        degrade nothing by themselves — they only matter to a system
        carrying an :class:`~repro.overload.OverloadModel`, which routes
        serving through the overloaded path regardless of this flag. A
        schedule holding only load processes therefore keeps the healthy
        fast path byte-identical on systems without an overload model.
        """
        return (
            not self.satellite_processes
            and not self.link_processes
            and not self.ground_processes
            and self.attempt_loss is None
        )

    def attempt_lost(self, request_index: int, attempt: int) -> bool:
        """Whether transient loss kills this (request, attempt) pair."""
        if self.attempt_loss is None:
            return False
        return self.attempt_loss.lost(request_index, attempt)

    def compile_load_at(self, t_s: float, num_satellites: int) -> np.ndarray | None:
        """Sum every load process's background load at instant ``t_s``.

        Returns a per-satellite array of extra offered requests per slot, or
        ``None`` when no load process is active — the overload model treats
        ``None`` as zero background everywhere without allocating.
        """
        if t_s < 0:
            raise FaultConfigError(f"negative time: {t_s}")
        total: np.ndarray | None = None
        for process in self.load_processes:
            load = process.background_load(t_s, num_satellites)
            if load is None:
                continue
            total = load.copy() if total is None else total + load
        if total is not None:
            rec = get_recorder()
            if rec.enabled:
                # One compile per snapshot slot, keyed by simulated time: the
                # timeline shows the flash crowd exactly where it was active.
                rec.window_inc(
                    t_s, "repro_fault_background_load", value=float(total.sum())
                )
        return total

    def compile_at(self, t_s: float, num_links: int) -> FaultView:
        """Union every process into the fault state at instant ``t_s``."""
        if t_s < 0:
            raise FaultConfigError(f"negative time: {t_s}")
        failed: set[int] = set()
        for process in self.satellite_processes:
            failed |= process.failed_satellites(t_s)

        cut: set[int] = set()
        multiplier: np.ndarray | None = None
        for process in self.link_processes:
            if hasattr(process, "cut_links"):
                cut |= process.cut_links(t_s, num_links)
            if hasattr(process, "latency_multiplier"):
                mult = process.latency_multiplier(t_s, num_links)
                if mult is not None:
                    multiplier = mult if multiplier is None else multiplier * mult

        grounds: set[str] = set()
        segment_down = False
        for process in self.ground_processes:
            if hasattr(process, "failed_grounds"):
                grounds |= process.failed_grounds(t_s)
            if hasattr(process, "ground_segment_down"):
                segment_down = segment_down or process.ground_segment_down(t_s)

        if failed or segment_down:
            rec = get_recorder()
            if rec.enabled:
                # Compiled once per snapshot slot (the serve path caches the
                # view), so each window records the fault state it ran under.
                if failed:
                    rec.window_inc(
                        t_s,
                        "repro_fault_failed_satellites",
                        value=float(len(failed)),
                    )
                if segment_down:
                    rec.window_inc(t_s, "repro_fault_ground_down_total")

        return FaultView(
            t_s=t_s,
            failed_satellites=frozenset(failed),
            cut_links=frozenset(cut),
            link_multiplier=multiplier,
            failed_grounds=frozenset(grounds),
            ground_segment_down=segment_down,
        )


def apply_fault_view(snapshot: SnapshotGraph, view: FaultView) -> SnapshotGraph:
    """The degraded sibling of a snapshot under one compiled fault view.

    Satellite failures become a node mask, link faults a per-link weight
    swap (see :func:`repro.topology.fastcore.degrade_core`); the original
    snapshot is never touched. Failed-satellite indices outside the
    snapshot's fleet are ignored so one schedule can drive shells of
    different sizes.
    """
    from repro.spacecdn.resilience import degrade_snapshot

    failed = frozenset(
        s for s in view.failed_satellites if 0 <= s < snapshot.core.num_nodes
    )
    return degrade_snapshot(
        snapshot,
        failed=failed,
        cut_links=view.cut_links,
        latency_multiplier=view.link_multiplier,
    )
