"""Seeded, deterministic fault processes over simulation time.

Each process answers point-in-time queries ("who is down at ``t``?") and is
fully determined by its configuration and seed — the answer never depends on
the order or history of queries, which is what makes fault experiments
reproducible and lets snapshots be rebuilt at any instant.

Satellite processes expose ``failed_satellites(t_s)``; ground processes
expose ``failed_grounds(t_s)`` / ``ground_segment_down(t_s)``; link
processes expose ``cut_links(t_s, num_links)`` and/or
``latency_multiplier(t_s, num_links)``. :class:`TransientAttemptLoss` is the
odd one out: it models per-attempt packet-level loss inside one request and
is keyed on (request, attempt) rather than wall-clock time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import FaultConfigError

_RENEWAL_CHUNK = 32
"""Up/down cycles drawn per extension of a renewal-process timeline."""


def _check_window(start_s: float, end_s: float) -> None:
    if not 0.0 <= start_s < end_s:
        raise FaultConfigError(
            f"fault window must satisfy 0 <= start < end, got [{start_s}, {end_s})"
        )


@dataclass
class SatelliteOutageProcess:
    """MTBF/MTTR renewal outages, one alternating process per satellite.

    Every satellite runs an independent up/down renewal process: up
    durations are exponential with mean ``mtbf_s``, down durations
    exponential with mean ``mttr_s``, all drawn from a generator seeded by
    ``(seed, satellite)``. All satellites start healthy at ``t = 0``.
    Timelines extend lazily (and monotonically, so answers are
    query-order independent) as later instants are queried.
    """

    total_satellites: int
    mtbf_s: float
    mttr_s: float
    seed: int = 0
    _rngs: dict = field(default_factory=dict, repr=False, compare=False)
    _timelines: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.total_satellites < 1:
            raise FaultConfigError("need at least one satellite")
        if self.mtbf_s <= 0 or self.mttr_s <= 0:
            raise FaultConfigError(
                f"MTBF and MTTR must be positive, got {self.mtbf_s}/{self.mttr_s}"
            )

    def _boundaries(self, satellite: int, t_s: float) -> np.ndarray:
        """Cumulative state-change instants for one satellite, covering ``t_s``.

        Entry ``2k`` ends up-period ``k``; entry ``2k + 1`` ends the
        following down-period. Chunks are appended from a per-satellite
        generator, so earlier entries never change as the horizon grows.
        """
        timeline = self._timelines.get(satellite)
        while timeline is None or timeline[-1] <= t_s:
            rng = self._rngs.get(satellite)
            if rng is None:
                rng = np.random.default_rng((self.seed, satellite))
                self._rngs[satellite] = rng
            ups = rng.exponential(self.mtbf_s, size=_RENEWAL_CHUNK)
            downs = rng.exponential(self.mttr_s, size=_RENEWAL_CHUNK)
            chunk = np.empty(2 * _RENEWAL_CHUNK)
            chunk[0::2] = ups
            chunk[1::2] = downs
            offset = 0.0 if timeline is None else timeline[-1]
            extended = offset + np.cumsum(chunk)
            timeline = (
                extended
                if timeline is None
                else np.concatenate((timeline, extended))
            )
            self._timelines[satellite] = timeline
        return timeline

    def is_down(self, satellite: int, t_s: float) -> bool:
        """Whether one satellite is inside a down period at ``t_s``."""
        if not 0 <= satellite < self.total_satellites:
            raise FaultConfigError(f"satellite {satellite} out of range")
        if t_s < 0:
            raise FaultConfigError(f"negative time: {t_s}")
        boundaries = self._boundaries(satellite, t_s)
        return int(np.searchsorted(boundaries, t_s, side="right")) % 2 == 1

    def failed_satellites(self, t_s: float) -> frozenset[int]:
        """Every satellite inside a down period at ``t_s``."""
        return frozenset(
            s for s in range(self.total_satellites) if self.is_down(s, t_s)
        )

    def expected_down_fraction(self) -> float:
        """Steady-state unavailability, MTTR / (MTBF + MTTR)."""
        return self.mttr_s / (self.mtbf_s + self.mttr_s)


@dataclass(frozen=True)
class KillList:
    """One-shot permanent failures: satellite ``s`` is dead from ``t`` on.

    Models deorbits and hard failures — there is no repair. ``kills`` maps
    satellite index to its kill instant.
    """

    kills: tuple[tuple[int, float], ...]

    def __post_init__(self) -> None:
        seen = set()
        for satellite, kill_t in self.kills:
            if satellite < 0:
                raise FaultConfigError(f"negative satellite index {satellite}")
            if kill_t < 0 or not math.isfinite(kill_t):
                raise FaultConfigError(f"invalid kill time {kill_t}")
            if satellite in seen:
                raise FaultConfigError(f"satellite {satellite} killed twice")
            seen.add(satellite)

    @classmethod
    def at(cls, kills: dict[int, float]) -> "KillList":
        """Build from a ``{satellite: kill_time}`` mapping."""
        return cls(kills=tuple(sorted(kills.items())))

    def failed_satellites(self, t_s: float) -> frozenset[int]:
        return frozenset(s for s, kill_t in self.kills if kill_t <= t_s)


@dataclass(frozen=True)
class OutageWindow:
    """A scheduled outage: ``satellites`` are down during ``[start, end)``.

    The deterministic building block for duty-cycle exits, planned
    maintenance, and fixed failure-fraction experiments.
    """

    satellites: frozenset[int]
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if any(s < 0 for s in self.satellites):
            raise FaultConfigError("negative satellite index in outage window")

    def failed_satellites(self, t_s: float) -> frozenset[int]:
        if self.start_s <= t_s < self.end_s:
            return self.satellites
        return frozenset()


@dataclass(frozen=True)
class GroundStationOutage:
    """Ground-segment outage during ``[start, end)``.

    ``stations`` names the ground nodes that are down; ``None`` means the
    whole ground segment (gateways, terrestrial fetch path) is unreachable,
    which removes the bent-pipe rung from the serving ladder entirely.
    """

    stations: frozenset[str] | None = None
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if self.stations is not None and not self.stations:
            raise FaultConfigError(
                "empty station set; use stations=None for a full ground outage"
            )

    def _active(self, t_s: float) -> bool:
        return self.start_s <= t_s < self.end_s

    def failed_grounds(self, t_s: float) -> frozenset[str]:
        if self._active(t_s) and self.stations is not None:
            return self.stations
        return frozenset()

    def ground_segment_down(self, t_s: float) -> bool:
        return self._active(t_s) and self.stations is None


@dataclass(frozen=True)
class IslCut:
    """Hard ISL cuts: the listed links carry nothing during ``[start, end)``.

    Link ids index the shell's +Grid link list (see
    :func:`repro.topology.isl.plus_grid_links` /
    :class:`repro.topology.fastcore.CsrTopology`).
    """

    links: frozenset[int]
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if any(l < 0 for l in self.links):
            raise FaultConfigError("negative link id in cut set")

    def cut_links(self, t_s: float, num_links: int) -> frozenset[int]:
        if not self.start_s <= t_s < self.end_s:
            return frozenset()
        bad = [l for l in self.links if l >= num_links]
        if bad:
            raise FaultConfigError(f"unknown link ids in cut set: {sorted(bad)[:5]}")
        return self.links

    def latency_multiplier(self, t_s: float, num_links: int) -> np.ndarray | None:
        return None


@dataclass(frozen=True)
class IslDegradation:
    """Soft ISL degradation: link latencies scale by ``multiplier``.

    Models pointing losses, retransmissions, and congestion on specific
    links (``links``) or fleet-wide (``links=None``) during ``[start, end)``.
    """

    multiplier: float
    links: frozenset[int] | None = None
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if not math.isfinite(self.multiplier) or self.multiplier < 1.0:
            raise FaultConfigError(
                f"latency multiplier must be finite and >= 1, got {self.multiplier}"
            )
        if self.links is not None and any(l < 0 for l in self.links):
            raise FaultConfigError("negative link id in degradation set")

    def cut_links(self, t_s: float, num_links: int) -> frozenset[int]:
        return frozenset()

    def latency_multiplier(self, t_s: float, num_links: int) -> np.ndarray | None:
        if not self.start_s <= t_s < self.end_s:
            return None
        mult = np.ones(num_links)
        if self.links is None:
            mult[:] = self.multiplier
            return mult
        ids = np.asarray(sorted(self.links), dtype=np.int64)
        if ids.size and ids[-1] >= num_links:
            raise FaultConfigError(
                f"unknown link id {int(ids[-1])} in degradation set"
            )
        mult[ids] = self.multiplier
        return mult


@dataclass(frozen=True)
class RandomIslCuts:
    """A rotating random subset of ISLs is cut in each rotation slot.

    Deterministic in ``(seed, slot)``, like the duty-cycle scheduler: the
    cut set is redrawn every ``rotate_every_s`` simulated seconds.
    """

    fraction: float
    seed: int = 0
    rotate_every_s: float = 600.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction < 1.0:
            raise FaultConfigError(
                f"cut fraction must be in [0, 1), got {self.fraction}"
            )
        if self.rotate_every_s <= 0:
            raise FaultConfigError("rotation period must be positive")

    def cut_links(self, t_s: float, num_links: int) -> frozenset[int]:
        if t_s < 0:
            raise FaultConfigError(f"negative time: {t_s}")
        count = round(num_links * self.fraction)
        if count == 0:
            return frozenset()
        slot = int(t_s // self.rotate_every_s)
        rng = np.random.default_rng((self.seed, slot))
        chosen = rng.choice(num_links, size=count, replace=False)
        return frozenset(int(l) for l in chosen)

    def latency_multiplier(self, t_s: float, num_links: int) -> np.ndarray | None:
        return None


@dataclass(frozen=True)
class FlashCrowdProcess:
    """A load spike: extra background demand on satellites during a window.

    Where every other process in this module *removes* capacity (outages,
    cuts), a flash crowd *consumes* it: during ``[start, end)`` the listed
    satellites (``None`` = the whole fleet) each carry
    ``extra_requests_per_slot`` of background load that the overload
    model's admission controller must account for before admitting real
    requests. ``ramp_s`` shapes the spike edges linearly — real flash
    crowds build and drain over minutes, and the ramp keeps availability
    curves smooth instead of stepping.

    Composable through :class:`~repro.faults.schedule.FaultSchedule` like
    any fault process, but inert unless the serving system also carries an
    :class:`~repro.overload.OverloadModel` — background load without a
    capacity model has nothing to saturate.
    """

    extra_requests_per_slot: float
    satellites: frozenset[int] | None = None
    start_s: float = 0.0
    end_s: float = math.inf
    ramp_s: float = 0.0

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if not self.extra_requests_per_slot >= 0:
            raise FaultConfigError(
                f"extra load must be non-negative, got "
                f"{self.extra_requests_per_slot}"
            )
        if self.ramp_s < 0:
            raise FaultConfigError(f"negative ramp: {self.ramp_s}")
        if self.satellites is not None:
            if not self.satellites:
                raise FaultConfigError(
                    "empty satellite set; use satellites=None for fleet-wide load"
                )
            if any(s < 0 for s in self.satellites):
                raise FaultConfigError("negative satellite index in flash crowd")

    def _intensity(self, t_s: float) -> float:
        """The spike's load share at ``t_s`` (0 outside, ramped at edges)."""
        if not self.start_s <= t_s < self.end_s:
            return 0.0
        if self.ramp_s <= 0:
            return 1.0
        edge = min(t_s - self.start_s, self.end_s - t_s)
        return min(1.0, edge / self.ramp_s)

    def background_load(self, t_s: float, num_satellites: int) -> np.ndarray | None:
        """Per-satellite background requests-per-slot at ``t_s``.

        ``None`` when the spike is inactive (the common case costs no
        array). Satellite indices beyond the fleet are ignored so one
        process can drive shells of different sizes.
        """
        if t_s < 0:
            raise FaultConfigError(f"negative time: {t_s}")
        weight = self._intensity(t_s) * self.extra_requests_per_slot
        if weight <= 0.0:
            return None
        load = np.zeros(num_satellites)
        if self.satellites is None:
            load[:] = weight
            return load
        ids = np.asarray(
            sorted(s for s in self.satellites if s < num_satellites),
            dtype=np.int64,
        )
        if ids.size == 0:
            return None
        load[ids] = weight
        return load


@dataclass(frozen=True)
class TransientAttemptLoss:
    """Per-attempt transient loss: attempt ``k`` of request ``i`` vanishes.

    Models handover-induced stalls and deep fades that kill one fetch
    attempt without taking the satellite down. Deterministic in
    ``(seed, request, attempt)`` so a rerun replays the same losses
    regardless of how many requests preceded it.
    """

    probability: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise FaultConfigError(
                f"loss probability must be in [0, 1], got {self.probability}"
            )

    def lost(self, request_index: int, attempt: int) -> bool:
        if self.probability <= 0.0:
            return False
        if self.probability >= 1.0:
            return True
        rng = np.random.default_rng((self.seed, request_index, attempt))
        return bool(rng.random() < self.probability)
