"""Fault injection: seeded fault processes, schedules, and retry policy.

The paper's §5 operational picture has satellites constantly leaving the
cache fleet (thermal duty-cycling, failures, deorbits) and links flapping;
this package turns that into a first-class, deterministic simulation input.
Compose processes into a :class:`FaultSchedule`, hand it to
:class:`~repro.spacecdn.system.SpaceCdnSystem`, and every snapshot is served
through the compiled degraded masks — injection costs a mask swap over the
CSR core, never a graph rebuild.
"""

from repro.faults.processes import (
    FlashCrowdProcess,
    GroundStationOutage,
    IslCut,
    IslDegradation,
    KillList,
    OutageWindow,
    RandomIslCuts,
    SatelliteOutageProcess,
    TransientAttemptLoss,
)
from repro.faults.retry import DeadlineBudget, RetryPolicy
from repro.faults.schedule import FaultSchedule, FaultView, apply_fault_view

__all__ = [
    "FaultSchedule",
    "FaultView",
    "apply_fault_view",
    "RetryPolicy",
    "DeadlineBudget",
    "FlashCrowdProcess",
    "SatelliteOutageProcess",
    "KillList",
    "OutageWindow",
    "GroundStationOutage",
    "IslCut",
    "IslDegradation",
    "RandomIslCuts",
    "TransientAttemptLoss",
]
