"""Retry policy for the degraded serving path.

All quantities are *simulated* milliseconds: the backoff a real client would
sleep is added to the served request's RTT rather than slept, so fault
experiments stay instantaneous to run while reporting faithful user-visible
latencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import FaultConfigError
from repro.obs.recorder import get_recorder


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with per-attempt RTT budget and exponential backoff.

    ``attempt_budget_ms`` is the per-attempt RTT the client tolerates before
    declaring a timeout and descending the fallback ladder; ``None`` means
    unlimited (the default — a system with the default policy and no fault
    schedule behaves exactly like the pre-fault serving path).
    ``backoff_ms(k)`` is the simulated wait before retrying after failed
    attempt ``k``, ``base * multiplier**(k-1)`` capped at ``backoff_cap_ms``.
    """

    max_attempts: int = 3
    attempt_budget_ms: float | None = None
    backoff_base_ms: float = 5.0
    backoff_multiplier: float = 2.0
    backoff_cap_ms: float = 200.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.attempt_budget_ms is not None and not (
            math.isfinite(self.attempt_budget_ms) and self.attempt_budget_ms > 0
        ):
            raise FaultConfigError(
                f"attempt budget must be positive and finite, got "
                f"{self.attempt_budget_ms}"
            )
        if self.backoff_base_ms < 0 or self.backoff_cap_ms < 0:
            raise FaultConfigError("backoff base and cap must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise FaultConfigError(
                f"backoff multiplier must be >= 1, got {self.backoff_multiplier}"
            )

    def backoff_ms(self, attempt: int) -> float:
        """Simulated backoff after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise FaultConfigError(f"attempt must be >= 1, got {attempt}")
        wait_ms = min(
            self.backoff_cap_ms,
            self.backoff_base_ms * self.backoff_multiplier ** (attempt - 1),
        )
        rec = get_recorder()
        if rec.enabled:
            rec.inc("repro_retry_backoff_total")
            rec.inc("repro_retry_backoff_ms_total", value=wait_ms)
        return wait_ms

    def within_budget(self, rtt_ms: float) -> bool:
        """Whether one attempt's RTT fits the per-attempt budget."""
        return self.attempt_budget_ms is None or rtt_ms <= self.attempt_budget_ms


@dataclass
class DeadlineBudget:
    """End-to-end deadline for one request, spent as the ladder descends.

    Where :class:`RetryPolicy` bounds each *attempt* with a fresh budget,
    a deadline budget is shared across every rung the request touches:
    simulated waits (backoff, wasted attempt time) are charged with
    :meth:`charge`, and :meth:`allows` gates the next attempt on the
    *remaining* budget — so a request that burned its deadline timing out
    on saturated space rungs cannot start a ground fetch it could never
    finish in time. ``total_ms=None`` disables the deadline (every attempt
    is allowed, nothing is tracked).
    """

    total_ms: float | None = None
    spent_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.total_ms is not None and not (
            math.isfinite(self.total_ms) and self.total_ms > 0
        ):
            raise FaultConfigError(
                f"deadline must be positive and finite, got {self.total_ms}"
            )
        if self.spent_ms < 0:
            raise FaultConfigError(
                f"spent budget must be non-negative, got {self.spent_ms}"
            )

    @property
    def remaining_ms(self) -> float:
        """Budget left; ``inf`` when no deadline is configured."""
        if self.total_ms is None:
            return math.inf
        return max(0.0, self.total_ms - self.spent_ms)

    def charge(self, wait_ms: float) -> None:
        """Consume ``wait_ms`` of simulated waiting from the budget."""
        if wait_ms < 0:
            raise FaultConfigError(f"negative wait: {wait_ms}")
        self.spent_ms += wait_ms

    def allows(self, rtt_ms: float) -> bool:
        """Whether an attempt expected to take ``rtt_ms`` still fits."""
        return self.total_ms is None or self.spent_ms + rtt_ms <= self.total_ms
